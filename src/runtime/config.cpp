#include "runtime/config.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "policy/policy.hpp"
#include "sim/scenario.hpp"
#include "util/json.hpp"

namespace mvs::runtime {

std::optional<Policy> parse_policy(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (name == "full") return Policy::kFull;
  if (name == "balb-ind" || name == "balbind" || name == "ind")
    return Policy::kBalbInd;
  if (name == "balb-cen" || name == "balbcen" || name == "cen")
    return Policy::kBalbCen;
  if (name == "balb") return Policy::kBalb;
  if (name == "sp" || name == "static" || name == "static-partition")
    return Policy::kStaticPartition;
  return std::nullopt;
}

std::optional<LatePolicy> parse_late_policy(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (name == "drop") return LatePolicy::kDrop;
  if (name == "supersede") return LatePolicy::kSupersede;
  if (name == "finish-late" || name == "finishlate" || name == "late")
    return LatePolicy::kFinishLate;
  return std::nullopt;
}

const char* to_string(LatePolicy policy) {
  switch (policy) {
    case LatePolicy::kDrop: return "drop";
    case LatePolicy::kSupersede: return "supersede";
    case LatePolicy::kFinishLate: return "finish-late";
  }
  return "?";
}

namespace {

bool valid_scenario(const std::string& name) {
  return name == "S1" || name == "S2" || name == "S3" ||
         sim::parse_city_name(name).has_value();
}

/// Read loss/jitter/retry/dropout keys from `obj` into `faults`. The same
/// key set appears flattened inside a "pipeline" object and as a session's
/// standalone "faults" object.
bool parse_faults(const util::Json& obj, netsim::FaultConfig* faults,
                  std::string* error) {
  faults->loss_rate = obj.number_or("loss_rate", faults->loss_rate);
  faults->jitter_ms = obj.number_or("jitter_ms", faults->jitter_ms);
  faults->retry_timeout_ms =
      obj.number_or("retry_timeout_ms", faults->retry_timeout_ms);
  faults->max_retries =
      static_cast<int>(obj.number_or("max_retries", faults->max_retries));
  if (const util::Json* drops = obj.find("dropouts")) {
    if (!drops->is_array()) {
      if (error) *error = "\"dropouts\" must be an array";
      return false;
    }
    for (const util::Json& d : drops->as_array()) {
      netsim::DropoutWindow w;
      w.camera = static_cast<int>(d.number_or("camera", -1));
      w.from_frame = static_cast<long>(d.number_or("from", 0));
      w.to_frame = static_cast<long>(d.number_or("to", -1));
      if (w.camera < 0) {
        if (error) *error = "dropout entry missing a valid \"camera\"";
        return false;
      }
      faults->dropouts.push_back(w);
    }
  }
  if (faults->loss_rate < 0.0 || faults->loss_rate >= 1.0 ||
      faults->jitter_ms < 0.0 || faults->retry_timeout_ms <= 0.0 ||
      faults->max_retries < 0) {
    if (error) *error = "fault parameters out of range";
    return false;
  }
  return true;
}

/// Parse a "pipeline" object on top of the defaults already in `pc`.
bool parse_pipeline(const util::Json& p, PipelineConfig* pc,
                    std::string* error) {
  if (!p.is_object()) {
    if (error) *error = "\"pipeline\" must be an object";
    return false;
  }
  const auto policy = parse_policy(p.string_or("policy", "balb"));
  if (!policy) {
    if (error) *error = "unknown policy: " + p.string_or("policy", "");
    return false;
  }
  pc->policy = *policy;
  pc->horizon_frames =
      static_cast<int>(p.number_or("horizon_frames", pc->horizon_frames));
  pc->training_frames =
      static_cast<int>(p.number_or("training_frames", pc->training_frames));
  pc->mask_cell_px =
      static_cast<int>(p.number_or("mask_cell_px", pc->mask_cell_px));
  pc->recall_iou = p.number_or("recall_iou", pc->recall_iou);
  pc->seed = static_cast<std::uint64_t>(
      p.number_or("seed", static_cast<double>(pc->seed)));
  pc->verbose = p.bool_or("verbose", pc->verbose);
  pc->threads = static_cast<int>(p.number_or("threads", pc->threads));
  pc->tile_flow = p.bool_or("tile_flow", pc->tile_flow);
  pc->tight_masks = p.bool_or("tight_masks", pc->tight_masks);
  pc->paired_rng = p.bool_or("paired_rng", pc->paired_rng);
  if (pc->horizon_frames < 1 || pc->training_frames < 0 ||
      pc->mask_cell_px < 1 || pc->threads < 0) {
    if (error) *error = "pipeline parameters out of range";
    return false;
  }
  const auto transport = net::parse_transport(p.string_or("transport", "ideal"));
  if (!transport) {
    if (error) *error = "unknown transport: " + p.string_or("transport", "");
    return false;
  }
  pc->transport = *transport;
  return parse_faults(p, &pc->faults, error);
}

/// Parse a "policy" block (detect-or-track layer) on top of the defaults in
/// `pc`. Unlike the legacy blocks, UNKNOWN KEYS ARE A HARD ERROR: policy
/// knobs directly trade GPU time against recall, so a typo silently falling
/// back to a default would ship the wrong trade.
bool parse_policy_block(const util::Json& p, policy::PolicyConfig* pc,
                        std::string* error) {
  if (!p.is_object()) {
    if (error) *error = "\"policy\" must be an object";
    return false;
  }
  static constexpr std::array<const char*, 17> kKnown = {
      "mode",        "staleness_limit", "min_track_frames",
      "drift_px",    "conf_floor",      "motion_frac",
      "churn_hi",    "hysteresis",      "model",
      "model_json",  "threshold",       "expected_detect_ratio",
      "feature_trace", "correlation_gate", "gate_threshold",
      "gate_window", "gate_hold"};
  for (const auto& [key, value] : p.as_object()) {
    if (std::find_if(kKnown.begin(), kKnown.end(), [&](const char* k) {
          return key == k;
        }) == kKnown.end()) {
      if (error) *error = "unknown policy key: \"" + key + "\"";
      return false;
    }
  }
  const auto kind =
      policy::parse_policy_kind(p.string_or("mode", "fixed"));
  if (!kind) {
    if (error) *error = "unknown policy mode: " + p.string_or("mode", "");
    return false;
  }
  pc->kind = *kind;
  pc->staleness_limit =
      static_cast<int>(p.number_or("staleness_limit", pc->staleness_limit));
  pc->min_track_frames =
      static_cast<int>(p.number_or("min_track_frames", pc->min_track_frames));
  pc->drift_px = p.number_or("drift_px", pc->drift_px);
  pc->conf_floor = p.number_or("conf_floor", pc->conf_floor);
  pc->motion_frac = p.number_or("motion_frac", pc->motion_frac);
  pc->churn_hi = p.number_or("churn_hi", pc->churn_hi);
  pc->hysteresis = p.number_or("hysteresis", pc->hysteresis);
  pc->model_path = p.string_or("model", pc->model_path);
  pc->model_json = p.string_or("model_json", pc->model_json);
  pc->threshold = p.number_or("threshold", pc->threshold);
  pc->expected_detect_ratio =
      p.number_or("expected_detect_ratio", pc->expected_detect_ratio);
  pc->feature_trace = p.string_or("feature_trace", pc->feature_trace);
  pc->correlation_gate = p.bool_or("correlation_gate", pc->correlation_gate);
  pc->gate_threshold = p.number_or("gate_threshold", pc->gate_threshold);
  pc->gate_window =
      static_cast<int>(p.number_or("gate_window", pc->gate_window));
  pc->gate_hold = static_cast<int>(p.number_or("gate_hold", pc->gate_hold));
  if (pc->gate_threshold < 0.0 || pc->gate_threshold > 1.0 ||
      pc->gate_window < 1 || pc->gate_hold < 0) {
    if (error) *error = "policy gate parameters out of range";
    return false;
  }
  if (pc->staleness_limit < 0 || pc->min_track_frames < 0 ||
      (pc->staleness_limit > 0 &&
       pc->min_track_frames >= pc->staleness_limit) ||
      pc->drift_px <= 0.0 || pc->hysteresis < 0.0 || pc->hysteresis > 1.0 ||
      pc->threshold < 0.0 || pc->threshold >= 1.0 ||
      pc->expected_detect_ratio <= 0.0 || pc->expected_detect_ratio > 1.0) {
    if (error) *error = "policy parameters out of range";
    return false;
  }
  return true;
}

util::Json dump_policy(const policy::PolicyConfig& pc) {
  using util::Json;
  Json::Object p;
  p["mode"] = Json(policy::to_string(pc.kind));
  p["staleness_limit"] = Json(pc.staleness_limit);
  p["min_track_frames"] = Json(pc.min_track_frames);
  p["drift_px"] = Json(pc.drift_px);
  p["conf_floor"] = Json(pc.conf_floor);
  p["motion_frac"] = Json(pc.motion_frac);
  p["churn_hi"] = Json(pc.churn_hi);
  p["hysteresis"] = Json(pc.hysteresis);
  p["model"] = Json(pc.model_path);
  p["model_json"] = Json(pc.model_json);
  p["threshold"] = Json(pc.threshold);
  p["expected_detect_ratio"] = Json(pc.expected_detect_ratio);
  p["feature_trace"] = Json(pc.feature_trace);
  p["correlation_gate"] = Json(pc.correlation_gate);
  p["gate_threshold"] = Json(pc.gate_threshold);
  p["gate_window"] = Json(pc.gate_window);
  p["gate_hold"] = Json(pc.gate_hold);
  return Json(std::move(p));
}

/// Parse the "rt" block (streaming pacing). Unknown keys are a hard error —
/// a typo here silently changes what counts as a deadline miss.
bool parse_rt(const util::Json& r, RtConfig* rt, std::string* error) {
  if (!r.is_object()) {
    if (error) *error = "\"rt\" must be an object";
    return false;
  }
  static constexpr std::array<const char*, 7> kKnown = {
      "paced",           "frame_period_ms",   "deadline_ms",
      "late_policy",     "arrival_jitter_ms", "fixed_overhead_ms",
      "miss_budget"};
  for (const auto& [key, value] : r.as_object()) {
    if (std::find_if(kKnown.begin(), kKnown.end(), [&](const char* k) {
          return key == k;
        }) == kKnown.end()) {
      if (error) *error = "unknown rt key: \"" + key + "\"";
      return false;
    }
  }
  rt->paced = r.bool_or("paced", rt->paced);
  rt->frame_period_ms = r.number_or("frame_period_ms", rt->frame_period_ms);
  rt->deadline_ms = r.number_or("deadline_ms", rt->deadline_ms);
  const auto late =
      parse_late_policy(r.string_or("late_policy", to_string(rt->late_policy)));
  if (!late) {
    if (error) *error = "unknown late_policy: " + r.string_or("late_policy", "");
    return false;
  }
  rt->late_policy = *late;
  rt->arrival_jitter_ms =
      r.number_or("arrival_jitter_ms", rt->arrival_jitter_ms);
  rt->fixed_overhead_ms =
      r.number_or("fixed_overhead_ms", rt->fixed_overhead_ms);
  rt->miss_budget = r.number_or("miss_budget", rt->miss_budget);
  if (rt->arrival_jitter_ms < 0.0 || rt->fixed_overhead_ms < 0.0 ||
      rt->miss_budget < 0.0 || rt->miss_budget > 1.0) {
    if (error) *error = "rt parameters out of range";
    return false;
  }
  return true;
}

util::Json dump_rt(const RtConfig& rt) {
  using util::Json;
  Json::Object r;
  r["paced"] = Json(rt.paced);
  r["frame_period_ms"] = Json(rt.frame_period_ms);
  r["deadline_ms"] = Json(rt.deadline_ms);
  r["late_policy"] = Json(to_string(rt.late_policy));
  r["arrival_jitter_ms"] = Json(rt.arrival_jitter_ms);
  r["fixed_overhead_ms"] = Json(rt.fixed_overhead_ms);
  r["miss_budget"] = Json(rt.miss_budget);
  return Json(std::move(r));
}

/// Parse the "city" block into a sim::CityConfig (the scenario name then
/// becomes the canonical encoded "city:..." string). Unknown keys are a
/// hard error.
bool parse_city(const util::Json& c, sim::CityConfig* city,
                std::string* error) {
  if (!c.is_object()) {
    if (error) *error = "\"city\" must be an object";
    return false;
  }
  static constexpr std::array<const char*, 10> kKnown = {
      "cameras",          "block_m",        "rate_per_s",
      "camera_depth_m",   "flash_at_s",     "flash_duration_s",
      "flash_multiplier", "day_night",      "night_period_s",
      "night_miss_boost"};
  for (const auto& [key, value] : c.as_object()) {
    if (std::find_if(kKnown.begin(), kKnown.end(), [&](const char* k) {
          return key == k;
        }) == kKnown.end()) {
      if (error) *error = "unknown city key: \"" + key + "\"";
      return false;
    }
  }
  city->cameras = static_cast<int>(c.number_or("cameras", city->cameras));
  city->block_m = c.number_or("block_m", city->block_m);
  city->rate_per_s = c.number_or("rate_per_s", city->rate_per_s);
  city->camera_depth_m = c.number_or("camera_depth_m", city->camera_depth_m);
  city->flash_at_s = c.number_or("flash_at_s", city->flash_at_s);
  city->flash_duration_s =
      c.number_or("flash_duration_s", city->flash_duration_s);
  city->flash_multiplier =
      c.number_or("flash_multiplier", city->flash_multiplier);
  city->day_night = c.bool_or("day_night", city->day_night);
  city->night_period_s = c.number_or("night_period_s", city->night_period_s);
  city->night_miss_boost =
      c.number_or("night_miss_boost", city->night_miss_boost);
  if (city->cameras < 1 || city->cameras > 1000 || city->block_m <= 0.0 ||
      city->rate_per_s < 0.0 || city->camera_depth_m <= 0.0 ||
      city->flash_duration_s <= 0.0 || city->flash_multiplier <= 0.0 ||
      city->night_period_s <= 0.0 || city->night_miss_boost < 0.0 ||
      city->night_miss_boost > 1.0) {
    if (error) *error = "city parameters out of range";
    return false;
  }
  return true;
}

util::Json dump_city(const sim::CityConfig& city) {
  using util::Json;
  Json::Object c;
  c["cameras"] = Json(city.cameras);
  c["block_m"] = Json(city.block_m);
  c["rate_per_s"] = Json(city.rate_per_s);
  c["camera_depth_m"] = Json(city.camera_depth_m);
  c["flash_at_s"] = Json(city.flash_at_s);
  c["flash_duration_s"] = Json(city.flash_duration_s);
  c["flash_multiplier"] = Json(city.flash_multiplier);
  c["day_night"] = Json(city.day_night);
  c["night_period_s"] = Json(city.night_period_s);
  c["night_miss_boost"] = Json(city.night_miss_boost);
  return Json(std::move(c));
}

/// Parse the "fleet" block. Session entries inherit the document's
/// top-level scenario and pipeline unless they override them. Unknown keys
/// are a hard error (like "policy"/"rt"/"city"): a typo in a sharding or
/// admission knob silently falling back to a default would ship the wrong
/// serving plane.
bool parse_fleet(const util::Json& f, const RunConfig& base,
                 FleetRunConfig* fleet, std::string* error) {
  if (!f.is_object()) {
    if (error) *error = "\"fleet\" must be an object";
    return false;
  }
  static constexpr std::array<const char*, 23> kKnown = {
      "slo_ms",          "frame_period_ms",
      "dispatch",        "threads",
      "allow_degrade",   "assumed_tasks_per_camera",
      "readmit_interval", "readmit_low_water",
      "readmit_high_water", "allow_split",
      "dispatch_overhead_ms", "shards",
      "shard_capacity",  "rebalance_interval",
      "rebalance_high_water", "device_scale",
      "sessions",        "burn_error_budget",
      "burn_fast_window", "burn_slow_window",
      "burn_raise",      "burn_clear",
      "burn_degrade"};
  for (const auto& [key, value] : f.as_object()) {
    if (std::find_if(kKnown.begin(), kKnown.end(), [&](const char* k) {
          return key == k;
        }) == kKnown.end()) {
      if (error) *error = "unknown fleet key: \"" + key + "\"";
      return false;
    }
  }
  fleet->slo_ms = f.number_or("slo_ms", fleet->slo_ms);
  fleet->frame_period_ms =
      f.number_or("frame_period_ms", fleet->frame_period_ms);
  fleet->dispatch = f.string_or("dispatch", fleet->dispatch);
  fleet->threads = static_cast<int>(f.number_or("threads", fleet->threads));
  fleet->allow_degrade = f.bool_or("allow_degrade", fleet->allow_degrade);
  fleet->assumed_tasks_per_camera = f.number_or(
      "assumed_tasks_per_camera", fleet->assumed_tasks_per_camera);
  fleet->readmit_interval = static_cast<int>(
      f.number_or("readmit_interval", fleet->readmit_interval));
  fleet->readmit_low_water =
      f.number_or("readmit_low_water", fleet->readmit_low_water);
  fleet->readmit_high_water =
      f.number_or("readmit_high_water", fleet->readmit_high_water);
  fleet->allow_split = f.bool_or("allow_split", fleet->allow_split);
  fleet->dispatch_overhead_ms =
      f.number_or("dispatch_overhead_ms", fleet->dispatch_overhead_ms);
  fleet->shards = static_cast<int>(f.number_or("shards", fleet->shards));
  fleet->shard_capacity =
      static_cast<int>(f.number_or("shard_capacity", fleet->shard_capacity));
  fleet->rebalance_interval = static_cast<int>(
      f.number_or("rebalance_interval", fleet->rebalance_interval));
  fleet->rebalance_high_water =
      f.number_or("rebalance_high_water", fleet->rebalance_high_water);
  fleet->burn_error_budget =
      f.number_or("burn_error_budget", fleet->burn_error_budget);
  fleet->burn_fast_window = static_cast<int>(
      f.number_or("burn_fast_window", fleet->burn_fast_window));
  fleet->burn_slow_window = static_cast<int>(
      f.number_or("burn_slow_window", fleet->burn_slow_window));
  fleet->burn_raise = f.number_or("burn_raise", fleet->burn_raise);
  fleet->burn_clear = f.number_or("burn_clear", fleet->burn_clear);
  fleet->burn_degrade = f.bool_or("burn_degrade", fleet->burn_degrade);
  if (fleet->frame_period_ms <= 0.0 || fleet->threads < 0 ||
      fleet->readmit_interval < 0 ||
      fleet->readmit_low_water > fleet->readmit_high_water ||
      fleet->dispatch_overhead_ms < 0.0 || fleet->shards < 1 ||
      fleet->shard_capacity < 0 || fleet->rebalance_interval < 0 ||
      fleet->rebalance_high_water <= 1.0) {
    if (error) *error = "fleet parameters out of range";
    return false;
  }
  if (fleet->burn_error_budget < 0.0 || fleet->burn_error_budget > 1.0 ||
      fleet->burn_fast_window < 1 || fleet->burn_slow_window < 1 ||
      fleet->burn_fast_window > fleet->burn_slow_window ||
      fleet->burn_raise <= 0.0 || fleet->burn_clear <= 0.0 ||
      fleet->burn_clear > fleet->burn_raise) {
    if (error) *error = "fleet burn parameters out of range";
    return false;
  }

  if (const util::Json* scale = f.find("device_scale")) {
    if (!scale->is_array()) {
      if (error) *error = "\"device_scale\" must be an array";
      return false;
    }
    for (const util::Json& entry : scale->as_array()) {
      FleetDeviceScale ds;
      ds.device_class = entry.string_or("class", "");
      ds.delta = static_cast<int>(entry.number_or("delta", 0));
      if (ds.device_class.empty()) {
        if (error) *error = "device_scale entry missing a \"class\"";
        return false;
      }
      fleet->device_scale.push_back(std::move(ds));
    }
  }

  if (const util::Json* sessions = f.find("sessions")) {
    if (!sessions->is_array()) {
      if (error) *error = "\"sessions\" must be an array";
      return false;
    }
    for (const util::Json& entry : sessions->as_array()) {
      if (!entry.is_object()) {
        if (error) *error = "session entries must be objects";
        return false;
      }
      static constexpr std::array<const char*, 9> kSessionKnown = {
          "name", "scenario", "weight",    "fps",      "slo_ms",
          "pipeline", "policy", "faults",  "synthetic"};
      for (const auto& [key, value] : entry.as_object()) {
        if (std::find_if(kSessionKnown.begin(), kSessionKnown.end(),
                         [&](const char* k) { return key == k; }) ==
            kSessionKnown.end()) {
          if (error) *error = "unknown session key: \"" + key + "\"";
          return false;
        }
      }
      FleetSessionSpec spec;
      spec.scenario = base.scenario;
      spec.pipeline = base.pipeline;
      spec.name = entry.string_or("name", spec.name);
      spec.scenario = entry.string_or("scenario", spec.scenario);
      spec.weight = entry.number_or("weight", spec.weight);
      spec.fps = static_cast<int>(entry.number_or("fps", spec.fps));
      spec.slo_ms = entry.number_or("slo_ms", spec.slo_ms);
      spec.synthetic = entry.bool_or("synthetic", spec.synthetic);
      if (!valid_scenario(spec.scenario)) {
        if (error) *error = "unknown session scenario: " + spec.scenario;
        return false;
      }
      if (spec.weight <= 0.0 || spec.fps < 0) {
        if (error) *error = "session parameters out of range";
        return false;
      }
      if (const util::Json* p = entry.find("pipeline"))
        if (!parse_pipeline(*p, &spec.pipeline, error)) return false;
      if (const util::Json* pol = entry.find("policy"))
        if (!parse_policy_block(*pol, &spec.pipeline.frame_policy, error))
          return false;
      if (const util::Json* faults = entry.find("faults")) {
        if (!faults->is_object()) {
          if (error) *error = "session \"faults\" must be an object";
          return false;
        }
        netsim::FaultConfig fc;
        if (!parse_faults(*faults, &fc, error)) return false;
        spec.faults = std::move(fc);
      }
      fleet->sessions.push_back(std::move(spec));
    }
  }
  return true;
}

util::Json dump_dropouts(const netsim::FaultConfig& faults) {
  util::Json::Array dropouts;
  for (const netsim::DropoutWindow& w : faults.dropouts) {
    util::Json::Object entry;
    entry["camera"] = util::Json(w.camera);
    entry["from"] = util::Json(static_cast<double>(w.from_frame));
    entry["to"] = util::Json(static_cast<double>(w.to_frame));
    dropouts.push_back(util::Json(std::move(entry)));
  }
  return util::Json(std::move(dropouts));
}

util::Json dump_pipeline(const PipelineConfig& pc) {
  using util::Json;
  Json::Object pipeline;
  const char* policy = "balb";
  switch (pc.policy) {
    case Policy::kFull: policy = "full"; break;
    case Policy::kBalbInd: policy = "balb-ind"; break;
    case Policy::kBalbCen: policy = "balb-cen"; break;
    case Policy::kBalb: policy = "balb"; break;
    case Policy::kStaticPartition: policy = "sp"; break;
  }
  pipeline["policy"] = Json(policy);
  pipeline["horizon_frames"] = Json(pc.horizon_frames);
  pipeline["training_frames"] = Json(pc.training_frames);
  pipeline["mask_cell_px"] = Json(pc.mask_cell_px);
  pipeline["recall_iou"] = Json(pc.recall_iou);
  pipeline["seed"] = Json(static_cast<double>(pc.seed));
  pipeline["verbose"] = Json(pc.verbose);
  pipeline["threads"] = Json(pc.threads);
  pipeline["tile_flow"] = Json(pc.tile_flow);
  pipeline["tight_masks"] = Json(pc.tight_masks);
  pipeline["paired_rng"] = Json(pc.paired_rng);
  pipeline["transport"] = Json(net::to_string(pc.transport));
  pipeline["loss_rate"] = Json(pc.faults.loss_rate);
  pipeline["jitter_ms"] = Json(pc.faults.jitter_ms);
  pipeline["retry_timeout_ms"] = Json(pc.faults.retry_timeout_ms);
  pipeline["max_retries"] = Json(pc.faults.max_retries);
  pipeline["dropouts"] = dump_dropouts(pc.faults);
  return Json(std::move(pipeline));
}

util::Json dump_fleet(const FleetRunConfig& fleet) {
  using util::Json;
  Json::Object f;
  f["slo_ms"] = Json(fleet.slo_ms);
  f["frame_period_ms"] = Json(fleet.frame_period_ms);
  f["dispatch"] = Json(fleet.dispatch);
  f["threads"] = Json(fleet.threads);
  f["allow_degrade"] = Json(fleet.allow_degrade);
  f["assumed_tasks_per_camera"] = Json(fleet.assumed_tasks_per_camera);
  f["readmit_interval"] = Json(fleet.readmit_interval);
  f["readmit_low_water"] = Json(fleet.readmit_low_water);
  f["readmit_high_water"] = Json(fleet.readmit_high_water);
  f["allow_split"] = Json(fleet.allow_split);
  f["dispatch_overhead_ms"] = Json(fleet.dispatch_overhead_ms);
  f["shards"] = Json(fleet.shards);
  f["shard_capacity"] = Json(fleet.shard_capacity);
  f["rebalance_interval"] = Json(fleet.rebalance_interval);
  f["rebalance_high_water"] = Json(fleet.rebalance_high_water);
  f["burn_error_budget"] = Json(fleet.burn_error_budget);
  f["burn_fast_window"] = Json(fleet.burn_fast_window);
  f["burn_slow_window"] = Json(fleet.burn_slow_window);
  f["burn_raise"] = Json(fleet.burn_raise);
  f["burn_clear"] = Json(fleet.burn_clear);
  f["burn_degrade"] = Json(fleet.burn_degrade);
  Json::Array scale;
  for (const FleetDeviceScale& ds : fleet.device_scale) {
    Json::Object entry;
    entry["class"] = Json(ds.device_class);
    entry["delta"] = Json(ds.delta);
    scale.push_back(Json(std::move(entry)));
  }
  f["device_scale"] = Json(std::move(scale));
  Json::Array sessions;
  for (const FleetSessionSpec& spec : fleet.sessions) {
    Json::Object s;
    s["name"] = Json(spec.name);
    s["scenario"] = Json(spec.scenario);
    s["weight"] = Json(spec.weight);
    s["fps"] = Json(spec.fps);
    s["slo_ms"] = Json(spec.slo_ms);
    s["synthetic"] = Json(spec.synthetic);
    s["pipeline"] = dump_pipeline(spec.pipeline);
    s["policy"] = dump_policy(spec.pipeline.frame_policy);
    if (spec.faults) {
      Json::Object faults;
      faults["loss_rate"] = Json(spec.faults->loss_rate);
      faults["jitter_ms"] = Json(spec.faults->jitter_ms);
      faults["retry_timeout_ms"] = Json(spec.faults->retry_timeout_ms);
      faults["max_retries"] = Json(spec.faults->max_retries);
      faults["dropouts"] = dump_dropouts(*spec.faults);
      s["faults"] = Json(std::move(faults));
    }
    sessions.push_back(Json(std::move(s)));
  }
  f["sessions"] = Json(std::move(sessions));
  return Json(std::move(f));
}

}  // namespace

std::optional<RunConfig> parse_run_config(const std::string& json_text,
                                          std::string* error) {
  const auto doc = util::Json::parse(json_text, error);
  if (!doc) return std::nullopt;
  if (!doc->is_object()) {
    if (error) *error = "config root must be an object";
    return std::nullopt;
  }

  RunConfig config;
  config.scenario = doc->string_or("scenario", config.scenario);
  if (const util::Json* c = doc->find("city")) {
    // A "city" block generates the scenario; an explicit non-city scenario
    // name alongside it is a contradiction, not a tiebreak.
    const std::string declared = doc->string_or("scenario", "city");
    if (declared.rfind("city", 0) != 0) {
      if (error)
        *error = "\"city\" block conflicts with scenario: " + declared;
      return std::nullopt;
    }
    sim::CityConfig city;
    if (const auto base = sim::parse_city_name(declared)) city = *base;
    if (!parse_city(*c, &city, error)) return std::nullopt;
    config.scenario = sim::city_scenario_name(city);
  }
  if (!valid_scenario(config.scenario)) {
    if (error) *error = "unknown scenario: " + config.scenario;
    return std::nullopt;
  }
  config.frames = static_cast<int>(doc->number_or("frames", config.frames));

  if (const util::Json* p = doc->find("pipeline"))
    if (!parse_pipeline(*p, &config.pipeline, error)) return std::nullopt;

  // Detect-or-track layer ("pipeline.policy" already names the scheduling
  // policy, so the frame policy is its own top-level block).
  if (const util::Json* p = doc->find("policy"))
    if (!parse_policy_block(*p, &config.pipeline.frame_policy, error))
      return std::nullopt;

  if (const util::Json* o = doc->find("obs")) {
    if (!o->is_object()) {
      if (error) *error = "\"obs\" must be an object";
      return std::nullopt;
    }
    static constexpr std::array<const char*, 7> kObsKnown = {
        "enabled",        "chrome_trace",
        "metrics_json",   "attribution",
        "postmortem_dir", "postmortem_miss_window",
        "postmortem_miss_threshold"};
    for (const auto& [key, value] : o->as_object()) {
      if (std::find_if(kObsKnown.begin(), kObsKnown.end(), [&](const char* k) {
            return key == k;
          }) == kObsKnown.end()) {
        if (error) *error = "unknown obs key: \"" + key + "\"";
        return std::nullopt;
      }
    }
    config.obs.enabled = o->bool_or("enabled", config.obs.enabled);
    config.obs.chrome_trace =
        o->string_or("chrome_trace", config.obs.chrome_trace);
    config.obs.metrics_json =
        o->string_or("metrics_json", config.obs.metrics_json);
    config.obs.attribution = o->bool_or("attribution", config.obs.attribution);
    config.obs.postmortem_dir =
        o->string_or("postmortem_dir", config.obs.postmortem_dir);
    config.obs.postmortem_miss_window = static_cast<int>(o->number_or(
        "postmortem_miss_window", config.obs.postmortem_miss_window));
    config.obs.postmortem_miss_threshold = static_cast<int>(o->number_or(
        "postmortem_miss_threshold", config.obs.postmortem_miss_threshold));
    // A metrics export needs the attribution block; a postmortem dir needs
    // frames in the recorder — both imply attribution.
    if (!config.obs.metrics_json.empty() || !config.obs.postmortem_dir.empty())
      config.obs.attribution = true;
    if (config.obs.postmortem_miss_window < 1 ||
        config.obs.postmortem_miss_threshold < 0 ||
        config.obs.postmortem_miss_threshold >
            config.obs.postmortem_miss_window) {
      if (error) *error = "obs postmortem parameters out of range";
      return std::nullopt;
    }
  }

  if (const util::Json* r = doc->find("rt"))
    if (!parse_rt(*r, &config.rt, error)) return std::nullopt;

  if (const util::Json* f = doc->find("fleet")) {
    FleetRunConfig fleet;
    if (!parse_fleet(*f, config, &fleet, error)) return std::nullopt;
    config.fleet = std::move(fleet);
  }
  return config;
}

std::string dump_run_config(const RunConfig& config) {
  using util::Json;
  Json::Object root;
  root["scenario"] = Json(config.scenario);
  if (const auto city = sim::parse_city_name(config.scenario))
    root["city"] = dump_city(*city);
  root["frames"] = Json(config.frames);
  root["pipeline"] = dump_pipeline(config.pipeline);
  root["policy"] = dump_policy(config.pipeline.frame_policy);
  root["rt"] = dump_rt(config.rt);
  Json::Object obs;
  obs["enabled"] = Json(config.obs.enabled);
  obs["chrome_trace"] = Json(config.obs.chrome_trace);
  obs["metrics_json"] = Json(config.obs.metrics_json);
  obs["attribution"] = Json(config.obs.attribution);
  obs["postmortem_dir"] = Json(config.obs.postmortem_dir);
  obs["postmortem_miss_window"] = Json(config.obs.postmortem_miss_window);
  obs["postmortem_miss_threshold"] = Json(config.obs.postmortem_miss_threshold);
  root["obs"] = Json(std::move(obs));
  if (config.fleet) root["fleet"] = dump_fleet(*config.fleet);
  return Json(std::move(root)).dump();
}

}  // namespace mvs::runtime

#include "runtime/config.hpp"

#include <algorithm>
#include <cctype>

#include "util/json.hpp"

namespace mvs::runtime {

std::optional<Policy> parse_policy(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (name == "full") return Policy::kFull;
  if (name == "balb-ind" || name == "balbind" || name == "ind")
    return Policy::kBalbInd;
  if (name == "balb-cen" || name == "balbcen" || name == "cen")
    return Policy::kBalbCen;
  if (name == "balb") return Policy::kBalb;
  if (name == "sp" || name == "static" || name == "static-partition")
    return Policy::kStaticPartition;
  return std::nullopt;
}

std::optional<RunConfig> parse_run_config(const std::string& json_text,
                                          std::string* error) {
  const auto doc = util::Json::parse(json_text, error);
  if (!doc) return std::nullopt;
  if (!doc->is_object()) {
    if (error) *error = "config root must be an object";
    return std::nullopt;
  }

  RunConfig config;
  config.scenario = doc->string_or("scenario", config.scenario);
  if (config.scenario != "S1" && config.scenario != "S2" &&
      config.scenario != "S3") {
    if (error) *error = "unknown scenario: " + config.scenario;
    return std::nullopt;
  }
  config.frames = static_cast<int>(doc->number_or("frames", config.frames));

  if (const util::Json* p = doc->find("pipeline")) {
    if (!p->is_object()) {
      if (error) *error = "\"pipeline\" must be an object";
      return std::nullopt;
    }
    PipelineConfig& pc = config.pipeline;
    const auto policy = parse_policy(p->string_or("policy", "balb"));
    if (!policy) {
      if (error) *error = "unknown policy: " + p->string_or("policy", "");
      return std::nullopt;
    }
    pc.policy = *policy;
    pc.horizon_frames =
        static_cast<int>(p->number_or("horizon_frames", pc.horizon_frames));
    pc.training_frames =
        static_cast<int>(p->number_or("training_frames", pc.training_frames));
    pc.mask_cell_px =
        static_cast<int>(p->number_or("mask_cell_px", pc.mask_cell_px));
    pc.recall_iou = p->number_or("recall_iou", pc.recall_iou);
    pc.seed = static_cast<std::uint64_t>(
        p->number_or("seed", static_cast<double>(pc.seed)));
    pc.verbose = p->bool_or("verbose", pc.verbose);
    pc.threads = static_cast<int>(p->number_or("threads", pc.threads));
    pc.tile_flow = p->bool_or("tile_flow", pc.tile_flow);
    if (pc.horizon_frames < 1 || pc.training_frames < 0 ||
        pc.mask_cell_px < 1 || pc.threads < 0) {
      if (error) *error = "pipeline parameters out of range";
      return std::nullopt;
    }

    const auto transport =
        net::parse_transport(p->string_or("transport", "ideal"));
    if (!transport) {
      if (error) *error = "unknown transport: " + p->string_or("transport", "");
      return std::nullopt;
    }
    pc.transport = *transport;
    netsim::FaultConfig& faults = pc.faults;
    faults.loss_rate = p->number_or("loss_rate", faults.loss_rate);
    faults.jitter_ms = p->number_or("jitter_ms", faults.jitter_ms);
    faults.retry_timeout_ms =
        p->number_or("retry_timeout_ms", faults.retry_timeout_ms);
    faults.max_retries =
        static_cast<int>(p->number_or("max_retries", faults.max_retries));
    if (const util::Json* drops = p->find("dropouts")) {
      if (!drops->is_array()) {
        if (error) *error = "\"dropouts\" must be an array";
        return std::nullopt;
      }
      for (const util::Json& d : drops->as_array()) {
        netsim::DropoutWindow w;
        w.camera = static_cast<int>(d.number_or("camera", -1));
        w.from_frame = static_cast<long>(d.number_or("from", 0));
        w.to_frame = static_cast<long>(d.number_or("to", -1));
        if (w.camera < 0) {
          if (error) *error = "dropout entry missing a valid \"camera\"";
          return std::nullopt;
        }
        faults.dropouts.push_back(w);
      }
    }
    if (faults.loss_rate < 0.0 || faults.loss_rate >= 1.0 ||
        faults.jitter_ms < 0.0 || faults.retry_timeout_ms <= 0.0 ||
        faults.max_retries < 0) {
      if (error) *error = "fault parameters out of range";
      return std::nullopt;
    }
  }
  return config;
}

std::string dump_run_config(const RunConfig& config) {
  using util::Json;
  Json::Object pipeline;
  const char* policy = "balb";
  switch (config.pipeline.policy) {
    case Policy::kFull: policy = "full"; break;
    case Policy::kBalbInd: policy = "balb-ind"; break;
    case Policy::kBalbCen: policy = "balb-cen"; break;
    case Policy::kBalb: policy = "balb"; break;
    case Policy::kStaticPartition: policy = "sp"; break;
  }
  pipeline["policy"] = Json(policy);
  pipeline["horizon_frames"] = Json(config.pipeline.horizon_frames);
  pipeline["training_frames"] = Json(config.pipeline.training_frames);
  pipeline["mask_cell_px"] = Json(config.pipeline.mask_cell_px);
  pipeline["recall_iou"] = Json(config.pipeline.recall_iou);
  pipeline["seed"] = Json(static_cast<double>(config.pipeline.seed));
  pipeline["verbose"] = Json(config.pipeline.verbose);
  pipeline["threads"] = Json(config.pipeline.threads);
  pipeline["tile_flow"] = Json(config.pipeline.tile_flow);
  pipeline["transport"] = Json(net::to_string(config.pipeline.transport));
  const netsim::FaultConfig& faults = config.pipeline.faults;
  pipeline["loss_rate"] = Json(faults.loss_rate);
  pipeline["jitter_ms"] = Json(faults.jitter_ms);
  pipeline["retry_timeout_ms"] = Json(faults.retry_timeout_ms);
  pipeline["max_retries"] = Json(faults.max_retries);
  Json::Array dropouts;
  for (const netsim::DropoutWindow& w : faults.dropouts) {
    Json::Object entry;
    entry["camera"] = Json(w.camera);
    entry["from"] = Json(static_cast<double>(w.from_frame));
    entry["to"] = Json(static_cast<double>(w.to_frame));
    dropouts.push_back(Json(std::move(entry)));
  }
  pipeline["dropouts"] = Json(std::move(dropouts));

  Json::Object root;
  root["scenario"] = Json(config.scenario);
  root["frames"] = Json(config.frames);
  root["pipeline"] = Json(std::move(pipeline));
  return Json(std::move(root)).dump();
}

}  // namespace mvs::runtime

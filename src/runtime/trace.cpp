#include "runtime/trace.hpp"

#include "util/json.hpp"

namespace mvs::runtime {

const char* to_string(TraceEventType type) {
  switch (type) {
    case TraceEventType::kKeyFrame: return "key_frame";
    case TraceEventType::kAssignment: return "assignment";
    case TraceEventType::kAdoptNew: return "adopt_new";
    case TraceEventType::kTakeover: return "takeover";
    case TraceEventType::kTrackDrop: return "track_drop";
    case TraceEventType::kCameraDown: return "camera_down";
    case TraceEventType::kCameraRejoin: return "camera_rejoin";
    case TraceEventType::kNetRetry: return "net_retry";
    case TraceEventType::kNetDrop: return "net_drop";
    case TraceEventType::kSessionAdmit: return "session_admit";
    case TraceEventType::kSessionReject: return "session_reject";
    case TraceEventType::kSessionEvict: return "session_evict";
    case TraceEventType::kSessionPause: return "session_pause";
    case TraceEventType::kSessionResume: return "session_resume";
    case TraceEventType::kSessionDefer: return "session_defer";
    case TraceEventType::kSessionReadmit: return "session_readmit";
    case TraceEventType::kDeviceScale: return "device_scale";
    case TraceEventType::kBatchSplit: return "batch_split";
    case TraceEventType::kSessionRedegrade: return "session_redegrade";
    case TraceEventType::kSessionMigrate: return "session_migrate";
    case TraceEventType::kRtDrop: return "rt_drop";
    case TraceEventType::kRtSupersede: return "rt_supersede";
    case TraceEventType::kRtDeadlineMiss: return "rt_deadline_miss";
    case TraceEventType::kSloAlertRaise: return "slo_alert_raise";
    case TraceEventType::kSloAlertClear: return "slo_alert_clear";
    case TraceEventType::kTraceEventTypeCount_: break;
  }
  return "?";
}

namespace {

util::Json event_json(const TraceEvent& e) {
  util::Json::Object obj;
  obj["frame"] = util::Json(static_cast<double>(e.frame));
  obj["camera"] = util::Json(e.camera);
  obj["type"] = util::Json(to_string(e.type));
  obj["object"] = util::Json(static_cast<double>(e.object_key));
  obj["value"] = util::Json(e.value);
  if (e.shard >= 0) obj["shard"] = util::Json(e.shard);
  if (e.migrated_from >= 0) obj["migrated_from"] = util::Json(e.migrated_from);
  return util::Json(std::move(obj));
}

}  // namespace

bool TraceRecorder::open_stream(const std::string& path, bool stream_only) {
  std::scoped_lock lock(mutex_);
  stream_.open(path, std::ios::out | std::ios::trunc);
  if (!stream_.is_open()) return false;
  stream_only_ = stream_only;
  return true;
}

void TraceRecorder::close_stream() {
  std::scoped_lock lock(mutex_);
  if (stream_.is_open()) stream_.close();
  stream_only_ = false;
}

bool TraceRecorder::streaming() const {
  std::scoped_lock lock(mutex_);
  return stream_.is_open();
}

void TraceRecorder::record(const TraceEvent& event) {
  std::scoped_lock lock(mutex_);
  ++counts_[static_cast<std::size_t>(event.type)];
  ++total_;
  if (stream_.is_open()) stream_ << event_json(event).dump() << '\n';
  if (!(stream_.is_open() && stream_only_)) events_.push_back(event);
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

std::size_t TraceRecorder::count(TraceEventType type) const {
  std::scoped_lock lock(mutex_);
  return counts_[static_cast<std::size_t>(type)];
}

std::size_t TraceRecorder::total() const {
  std::scoped_lock lock(mutex_);
  return total_;
}

void TraceRecorder::clear() {
  std::scoped_lock lock(mutex_);
  events_.clear();
  counts_.fill(0);
  total_ = 0;
}

std::string TraceRecorder::to_json() const {
  util::Json::Array array;
  for (const TraceEvent& e : events()) array.push_back(event_json(e));
  return util::Json(std::move(array)).dump();
}

}  // namespace mvs::runtime

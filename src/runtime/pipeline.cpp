#include "runtime/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "assoc/association.hpp"
#include "core/baselines.hpp"
#include "core/central_balb.hpp"
#include "core/distributed.hpp"
#include "detect/simulated_detector.hpp"
#include "geometry/size_class.hpp"
#include "gpu/batch_planner.hpp"
#include "metrics/metrics.hpp"
#include "net/messages.hpp"
#include "net/transport.hpp"
#include "netsim/sim_transport.hpp"
#include "obs/obs.hpp"
#include "policy/correlation.hpp"
#include "policy/features.hpp"
#include "policy/policy.hpp"
#include "runtime/oracles.hpp"
#include "sim/dataset.hpp"
#include "track/flow_tracker.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/stopwatch.hpp"
#include "vision/regions.hpp"
#include "vision/renderer.hpp"

namespace mvs::runtime {

namespace {

/// An object this camera can see but is NOT assigned to track. Its box is
/// kept alive by free optical-flow projection so the camera can (a) avoid
/// re-detecting it as "new" and (b) take over its tracking if it leaves the
/// assigned camera's view (distributed-stage case 2).
struct Ghost {
  std::uint64_t key = 0;
  geom::BBox box;
  int assigned_cam = -1;
};

/// Greedy IoU non-maximum suppression; overlapping partial-frame ROIs can
/// yield duplicate detections of one object. Sorts `dets` in place and
/// fills `kept` (cleared first) so warm calls reuse both buffers.
void nms_into(std::vector<detect::Detection>& dets, double iou_threshold,
              std::vector<detect::Detection>& kept) {
  std::sort(dets.begin(), dets.end(),
            [](const detect::Detection& a, const detect::Detection& b) {
              return a.score > b.score;
            });
  kept.clear();
  for (const detect::Detection& d : dets) {
    bool suppressed = false;
    for (const detect::Detection& k : kept) {
      if (geom::iou(d.box, k.box) >= iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
}

struct CameraNode {
  int index = 0;
  gpu::DeviceProfile device;
  double frame_w = 0.0, frame_h = 0.0;
  double render_scale = 4.0;
  vision::Renderer renderer;
  vision::OpticalFlow flow_engine;
  track::FlowTracker tracker;
  /// Per-camera frame/pyramid/flow scratch: the current frame is rendered
  /// into `scratch`, whose previous-frame pyramid persists across frames so
  /// each regular frame builds exactly one pyramid and reallocates nothing.
  vision::FlowScratch scratch;
  vision::FlowField flow;
  std::vector<Ghost> ghosts;
  util::Rng rng;
  std::vector<std::uint8_t> batch_buffer;
  std::vector<vision::RenderObject> render_objs;
  /// Detect-or-track feature accumulator (only touched when the policy
  /// layer or feature-trace recording is enabled; see Impl::features_on).
  policy::CameraFeatureState pstate;

  /// A recently dropped track awaiting re-acquisition. Under a
  /// detect-or-track policy a track can die while its object is still in
  /// frame (a few sparse inspections miss); with no live track there is no
  /// ROI slice, so the camera goes blind until the next key frame. The lost
  /// list keeps the dead track's last box coasting on its velocity estimate
  /// and seeds detection slices from it; an unmatched detection landing on a
  /// lost box is re-adopted directly (it is a re-acquisition of an object
  /// already planned to this camera, not a new-object adoption). Populated
  /// only in policy mode — the fixed pipeline never touches it.
  struct LostTrack {
    geom::BBox box;
    geom::Vec2 velocity{0.0, 0.0};
    int ttl = 0;  ///< frames of search left (a key frame re-plans anyway)
  };
  std::vector<LostTrack> lost;

  /// Per-camera regular-frame working memory (DESIGN.md §11): every
  /// container regular_camera_step fills lives here, so a warm regular
  /// frame reuses capacity instead of allocating. Owned by the camera (not
  /// thread_local) because cameras run on arbitrary pool workers and the
  /// buffers' sizes track THIS camera's load.
  struct StepScratch {
    std::vector<long> dropped;                          ///< cull_departed
    std::vector<long> inspected_ids;                    ///< policy mode
    std::vector<std::pair<long, geom::BBox>> inspect;   ///< policy mode
    std::vector<std::pair<long, geom::BBox>> predicted; ///< fixed mode
    std::vector<vision::SliceRegion> slices;
    std::vector<geom::BBox> explained;
    std::vector<geom::BBox> fresh;
    vision::RegionScratch regions;
    std::vector<int> batch_counts;
    gpu::BatchPlan plan;
    std::vector<detect::Detection> dets;
    std::vector<detect::Detection> nms_kept;
    track::FlowTracker::UpdateResult update;
    std::vector<Ghost> ghosts_kept;  ///< takeover_pass survivor buffer
    std::vector<int> visible;        ///< takeover_pass successor electorate
  };
  StepScratch step;

  /// Render this frame's ground truth into scratch.cur_frame().
  void render_current(const std::vector<detect::GroundTruthObject>& gt,
                      long frame) {
    render_objs.clear();
    render_objs.reserve(gt.size());
    for (const detect::GroundTruthObject& o : gt) {
      render_objs.push_back(
          {o.id, geom::BBox{o.box.x / render_scale, o.box.y / render_scale,
                            o.box.w / render_scale, o.box.h / render_scale}});
    }
    renderer.render_into(render_objs, frame,
                         0x5EED0000ULL + static_cast<std::uint64_t>(index),
                         scratch.cur_frame());
  }

  /// Drop tracks that have left the frame (the clamped box lost most of its
  /// area); fills `dropped` (cleared first) with the ids dropped.
  void cull_departed_into(std::vector<long>& dropped) {
    dropped.clear();
    auto& ts = tracker.tracks();
    for (auto it = ts.begin(); it != ts.end();) {
      const geom::BBox clipped = it->box.clamped(frame_w, frame_h);
      if (it->box.area() <= 0.0 ||
          clipped.area() < 0.3 * it->box.area()) {
        dropped.push_back(it->id);
        it = ts.erase(it);
      } else {
        ++it;
      }
    }
  }
};

}  // namespace

struct Pipeline::Impl {
  Impl(const std::string& scenario_name, const PipelineConfig& config,
       util::ThreadPool* shared_pool)
      : cfg(config),
        player(sim::make_scenario(scenario_name, config.seed),
               /*warmup_s=*/45.0),
        owned_pool(shared_pool
                       ? nullptr
                       : std::make_unique<util::ThreadPool>(
                             static_cast<std::size_t>(
                                 std::max(0, config.threads)))),
        pool(shared_pool ? *shared_pool : *owned_pool),
        recall(config.recall_iou) {
    scenario_name_ = scenario_name;
    const sim::Scenario& sc = player.scenario();
    const std::size_t m = sc.cameras.size();

    std::vector<std::pair<double, double>> frame_sizes;
    for (const sim::ScenarioCamera& cam : sc.cameras)
      frame_sizes.emplace_back(cam.model.width(), cam.model.height());

    util::Rng root(cfg.seed ^ 0xABCDEF12ULL);
    for (std::size_t i = 0; i < m; ++i) {
      CameraNode node;
      node.index = static_cast<int>(i);
      node.device = sc.cameras[i].device;
      node.frame_w = static_cast<double>(sc.cameras[i].model.width());
      node.frame_h = static_cast<double>(sc.cameras[i].model.height());
      node.render_scale = sc.render_scale;
      vision::Renderer::Config rc;
      rc.width = static_cast<int>(node.frame_w / sc.render_scale);
      rc.height = static_cast<int>(node.frame_h / sc.render_scale);
      node.renderer = vision::Renderer(rc);
      node.tracker = track::FlowTracker(track::FlowTracker::Config{}, sizes);
      node.rng = root.fork();
      cameras.push_back(std::move(node));
    }
    active.assign(m, 1);
    gpu_work.resize(m);
    tile_flow = cfg.tile_flow && m < pool.thread_count();

    // Detect-or-track layer. The fixed kind is fast-pathed: no policy
    // object, no feature bookkeeping, no extra obs signals — the pipeline
    // stays bit-identical to its pre-policy behavior.
    if (cfg.frame_policy.kind != policy::PolicyKind::kFixed)
      frame_policy = policy::make_policy(cfg.frame_policy, m);
    if (!cfg.frame_policy.feature_trace.empty()) {
      feature_trace.open(cfg.frame_policy.feature_trace, std::ios::trunc);
      if (!feature_trace)
        throw std::runtime_error("policy: cannot open feature trace " +
                                 cfg.frame_policy.feature_trace);
    }
    features_on = frame_policy != nullptr || feature_trace.is_open();

    if (cfg.transport == net::TransportKind::kLossy) {
      netsim::SimTransport::Config tc;
      tc.faults = cfg.faults;
      transport = std::make_unique<netsim::SimTransport>(tc, m, cfg.seed);
    } else {
      transport = std::make_unique<net::IdealTransport>(m);
    }

    // Train the cross-camera models on the first split. All policies consume
    // the training frames so every policy evaluates the identical segment.
    const std::vector<sim::MultiFrame> training =
        player.take(cfg.training_frames);
    if (needs_association()) {
      associator = std::make_unique<assoc::CrossCameraAssociator>(frame_sizes);
      associator->train(training);
      build_cell_cache(frame_sizes);
    }

    // ReXCam-style correlation gate: learn entry cameras and pairwise
    // reachability from the same training split (ground-truth identities —
    // the gate trains on the sim the way the associator does).
    if (cfg.frame_policy.correlation_gate) {
      policy::CorrelationGateConfig gc;
      gc.enabled = true;
      gc.threshold = cfg.frame_policy.gate_threshold;
      gc.window = cfg.frame_policy.gate_window;
      gc.hold = cfg.frame_policy.gate_hold;
      corr_gate = std::make_unique<policy::CorrelationGate>(gc, m);
      std::vector<policy::CameraSightings> sightings;
      sightings.reserve(training.size());
      for (const sim::MultiFrame& tf : training) {
        policy::CameraSightings frame(m);
        for (std::size_t i = 0; i < m && i < tf.per_camera.size(); ++i)
          for (const detect::GroundTruthObject& o : tf.per_camera[i])
            frame[i].push_back(o.id);
        sightings.push_back(std::move(frame));
      }
      corr_gate->fit(sightings);
      gate_cold_.assign(m, 0);
      gate_activity_.assign(m, 0);
    }

    // Day/night detection-quality schedule (city scenarios): precompute the
    // night detector so phase flips are a plain value swap.
    quality_ = player.scenario().quality;
    if (quality_.enabled) {
      detect::SimulatedDetector::Config nc = detector.config();
      nc.base_miss_rate =
          std::min(0.95, nc.base_miss_rate + quality_.night_miss_boost);
      nc.score_mean = std::max(0.05, nc.score_mean - quality_.night_score_drop);
      night_detector_ = detect::SimulatedDetector(nc);
      day_detector_ = detector;
    }
  }

  bool needs_association() const {
    return cfg.policy == Policy::kBalb || cfg.policy == Policy::kBalbCen ||
           cfg.policy == Policy::kStaticPartition;
  }

  /// Static per-deployment cell oracles: cell coverage sets and region keys
  /// depend only on camera poses, so they are computed once from the trained
  /// models and reused by every horizon's mask construction.
  void build_cell_cache(
      const std::vector<std::pair<double, double>>& frame_sizes) {
    const core::CellCoverageFn cov = make_coverage_oracle(*associator);
    const core::RegionKeyFn key = make_region_key_oracle(*associator);
    for (std::size_t i = 0; i < cameras.size(); ++i) {
      CellCache cache{geom::Grid(static_cast<int>(frame_sizes[i].first),
                                 static_cast<int>(frame_sizes[i].second),
                                 cfg.mask_cell_px),
                      {},
                      {}};
      cache.coverage.resize(cache.grid.cell_count());
      cache.region_key.resize(cache.grid.cell_count());
      for (int r = 0; r < cache.grid.rows(); ++r) {
        for (int c = 0; c < cache.grid.cols(); ++c) {
          const geom::CellIndex cell{c, r};
          const geom::Vec2 center = cache.grid.cell_box(cell).center();
          cache.coverage[cache.grid.flat(cell)] =
              cov(static_cast<int>(i), center);
          cache.region_key[cache.grid.flat(cell)] =
              key(static_cast<int>(i), center);
        }
      }
      cell_cache.push_back(std::move(cache));
    }
  }

  core::CellCoverageFn cached_coverage() const {
    return [this](int cam, geom::Vec2 center) {
      const CellCache& cache = cell_cache[static_cast<std::size_t>(cam)];
      return cache.coverage[cache.grid.flat(cache.grid.cell_at(center))];
    };
  }

  core::RegionKeyFn cached_region_key() const {
    return [this](int cam, geom::Vec2 center) {
      const CellCache& cache = cell_cache[static_cast<std::size_t>(cam)];
      return cache.region_key[cache.grid.flat(cache.grid.cell_at(center))];
    };
  }

  std::vector<std::pair<int, int>> frame_dims() const {
    std::vector<std::pair<int, int>> dims;
    for (const CameraNode& node : cameras)
      dims.emplace_back(static_cast<int>(node.frame_w),
                        static_cast<int>(node.frame_h));
    return dims;
  }

  std::vector<gpu::DeviceProfile> devices() const {
    std::vector<gpu::DeviceProfile> out;
    for (const CameraNode& node : cameras) out.push_back(node.device);
    return out;
  }

  // ---- frame steps -------------------------------------------------------

  /// Advance one evaluation frame (body of Pipeline::run_frame). Returns a
  /// reference to stats_, overwritten by the next call.
  const FrameStats& run_frame();

  /// tight_masks degraded mode: a camera may only adopt a NEW object when
  /// the cell under it has solo coverage (no other camera could pick it up).
  /// Always true outside degraded mode or when no cell cache exists
  /// (policies without association models are unaffected).
  bool adopt_allowed(int cam, const geom::BBox& box) const {
    if (!cfg.tight_masks || cell_cache.empty()) return true;
    const CellCache& cache = cell_cache[static_cast<std::size_t>(cam)];
    return cache.coverage[cache.grid.flat(cache.grid.cell_at(box.center()))]
               .size() <= 1;
  }

  /// Apply the transport's dropout schedule to the camera fleet. A camera
  /// going offline dies immediately — tracks and ghost bookkeeping with it;
  /// it rejoins only at a key frame (`may_rejoin`), where the full
  /// inspection and a fresh central plan fold it back into the schedule.
  void refresh_active(long eval_frame, long trace_frame, bool may_rejoin) {
    for (std::size_t i = 0; i < cameras.size(); ++i) {
      const bool online =
          transport->camera_online(static_cast<int>(i), eval_frame);
      if (active[i] && !online) {
        active[i] = 0;
        cameras[i].tracker.reset_from_detections({});
        cameras[i].ghosts.clear();
        cameras[i].pstate = {};  // policy features die with the device
        if (trace)
          trace->record({trace_frame, static_cast<int>(i),
                         TraceEventType::kCameraDown, 0, 0.0});
      } else if (!active[i] && online && may_rejoin) {
        active[i] = 1;
        if (trace)
          trace->record({trace_frame, static_cast<int>(i),
                         TraceEventType::kCameraRejoin, 0, 0.0});
      }
    }
  }

  void full_frame_step(const sim::MultiFrame& mf, FrameStats& stats,
                       std::vector<std::vector<geom::BBox>>& reported) {
    for (CameraNode& cam : cameras) {
      if (!active[static_cast<std::size_t>(cam.index)] ||
          gate_cold(static_cast<std::size_t>(cam.index))) {
        stats.camera_infer_ms.push_back(0.0);
        continue;
      }
      const auto dets = detector.detect_full(
          mf.per_camera[static_cast<std::size_t>(cam.index)], cam.frame_w,
          cam.frame_h, cam.rng);
      stats.camera_infer_ms.push_back(cam.device.full_frame_ms());
      gpu_work[static_cast<std::size_t>(cam.index)].full_frame = true;
      for (const detect::Detection& d : dets)
        reported[static_cast<std::size_t>(cam.index)].push_back(d.box);
    }
  }

  void key_frame_step(const sim::MultiFrame& mf, long eval_frame,
                      FrameStats& stats,
                      std::vector<std::vector<geom::BBox>>& reported) {
    MVS_SPAN("pipeline.key_frame");
    const std::size_t m = cameras.size();
    const bool central_stage = cfg.policy != Policy::kBalbInd;

    // Full inspection on every online camera; offline cameras contribute
    // nothing this horizon.
    std::vector<std::vector<detect::Detection>> dets(m);
    for (CameraNode& cam : cameras) {
      const auto i = static_cast<std::size_t>(cam.index);
      if (!active[i] || gate_cold(i)) {
        // Offline — or correlation-gated cold, which skips the full
        // inspection (and its uplink) but still renders below so flow has a
        // reference when the camera heats up.
        stats.camera_infer_ms.push_back(0.0);
        continue;
      }
      dets[i] = detector.detect_full(mf.per_camera[i], cam.frame_w,
                                     cam.frame_h, cam.rng);
      stats.camera_infer_ms.push_back(cam.device.full_frame_ms());
      gpu_work[i].full_frame = true;
      for (const detect::Detection& d : dets[i]) reported[i].push_back(d.box);
      if (central_stage) {
        net::DetectionListMsg msg{static_cast<std::uint32_t>(cam.index),
                                  static_cast<std::uint64_t>(mf.frame_index),
                                  dets[i]};
        transport->send_uplink(eval_frame, cam.index, msg.encode().size());
      }
    }

    if (!central_stage) {
      for (CameraNode& cam : cameras)
        if (active[static_cast<std::size_t>(cam.index)])
          cam.tracker.reset_from_detections(
              dets[static_cast<std::size_t>(cam.index)]);
    } else {
      MVS_SPAN("pipeline.central");
      // Uplink phase: the central stage only sees the detection lists the
      // transport actually delivered — a lost uplink drops that camera out
      // of this horizon's plan and BALB re-plans over the survivors.
      const net::UplinkReport uplinks = transport->run_uplinks(eval_frame);
      std::vector<std::vector<detect::Detection>> sched_dets(m);
      for (std::size_t i = 0; i < m; ++i)
        if (active[i] && i < uplinks.delivered.size() && uplinks.delivered[i])
          sched_dets[i] = dets[i];

      // Central stage: association + scheduling + masks.
      util::Stopwatch central_sw;
      const std::vector<assoc::AssociatedObject> objects =
          associator->associate(sched_dets);

      core::MvsProblem problem;
      problem.cameras = devices();
      for (std::size_t j = 0; j < objects.size(); ++j) {
        core::ObjectSpec spec;
        spec.key = j;
        spec.size_class.assign(m, 0);
        for (std::size_t i = 0; i < m; ++i) {
          if (objects[j].det_index[i] < 0) continue;
          spec.coverage.push_back(static_cast<int>(i));
          spec.size_class[i] = sizes.quantize(objects[j].boxes[i]);
        }
        problem.objects.push_back(std::move(spec));
      }

      core::Assignment assignment;
      if (cfg.policy == Policy::kStaticPartition) {
        const core::RegionKeyFn region_key = cached_region_key();
        std::vector<int> owner(problem.objects.size(), 0);
        for (std::size_t j = 0; j < problem.objects.size(); ++j) {
          const int canonical = problem.objects[j].coverage.front();
          owner[j] = core::power_weighted_owner(
              problem.objects[j].coverage, problem.cameras,
              region_key(canonical,
                         objects[j].boxes[static_cast<std::size_t>(canonical)]
                             .center()));
        }
        assignment = core::static_partition_assignment(problem, owner);
        if (!sp_masks_ready) {
          sp_masks = core::build_power_weighted_masks(
              frame_dims(), cfg.mask_cell_px, cached_coverage(),
              cached_region_key(), problem.cameras);
          sp_masks_ready = true;
        }
      } else {
        assignment = core::central_balb(problem);
        if (cfg.policy == Policy::kBalb) {
          // Offline cameras are cut from the priority order, so their mask
          // cells fall to surviving cameras and takeover elections never
          // pick a dead device.
          std::vector<int> priority;
          for (int c : assignment.priority_order())
            if (active[static_cast<std::size_t>(c)]) priority.push_back(c);
          distributed = core::DistributedStage(
              core::build_priority_masks(frame_dims(), cfg.mask_cell_px,
                                         cached_coverage(), priority),
              priority);
        }
      }
      stats.central_ms = central_sw.elapsed_ms();
      if (trace) {
        trace->record({mf.frame_index, -1, TraceEventType::kKeyFrame, 0,
                       assignment.system_latency()});
        for (std::size_t i = 0; i < m; ++i)
          for (std::size_t j = 0; j < problem.objects.size(); ++j)
            if (assignment.x[i][j])
              trace->record({mf.frame_index, static_cast<int>(i),
                             TraceEventType::kAssignment, j, 0.0});
      }

      // Downlink: per-camera assignment slice to every online camera.
      for (std::size_t i = 0; i < m; ++i) {
        if (!active[i]) continue;
        net::AssignmentMsg msg;
        msg.camera_id = static_cast<std::uint32_t>(i);
        msg.frame_index = static_cast<std::uint64_t>(mf.frame_index);
        for (std::size_t j = 0; j < problem.objects.size(); ++j)
          if (assignment.x[i][j]) msg.assigned_keys.push_back(j);
        transport->send_downlink(eval_frame, static_cast<int>(i),
                                 msg.encode().size());
      }
      const net::CycleReport report = transport->finish_cycle(eval_frame);
      stats.comm_ms = report.comm_ms;
      stats.queue_ms = report.queue_ms;
      stats.retries = report.retries;
      stats.dropped_msgs = report.dropped_msgs;
      if (trace) {
        for (const net::MessageEvent& e : report.events)
          trace->record({mf.frame_index, e.camera,
                         e.kind == net::MessageEvent::Kind::kRetry
                             ? TraceEventType::kNetRetry
                             : TraceEventType::kNetDrop,
                         static_cast<std::uint64_t>(e.uplink ? 1 : 0),
                         e.time_ms});
      }

      // Cameras adopt their slices; unassigned-but-covered objects become
      // ghosts (BALB distributed stage bookkeeping). A camera whose uplink
      // or downlink was lost never saw the new plan: it keeps its previous
      // tracks and ghosts for another horizon instead of resetting to an
      // empty (and wrong) slice.
      for (CameraNode& cam : cameras) {
        const auto i = static_cast<std::size_t>(cam.index);
        if (!active[i]) continue;
        const bool plan_received =
            i < uplinks.delivered.size() && uplinks.delivered[i] &&
            i < report.downlink_delivered.size() &&
            report.downlink_delivered[i];
        if (!plan_received) continue;
        std::vector<detect::Detection> mine;
        cam.ghosts.clear();
        for (std::size_t j = 0; j < problem.objects.size(); ++j) {
          const int det_index = objects[j].det_index[i];
          if (det_index < 0) continue;
          if (assignment.x[i][j]) {
            mine.push_back(dets[i][static_cast<std::size_t>(det_index)]);
          } else if (cfg.policy == Policy::kBalb) {
            int tracker_cam = -1;
            for (std::size_t i2 = 0; i2 < m; ++i2)
              if (assignment.x[i2][j]) tracker_cam = static_cast<int>(i2);
            cam.ghosts.push_back(Ghost{j, objects[j].boxes[i], tracker_cam});
          }
        }
        cam.tracker.reset_from_detections(mine);
      }
    }

    // Render the key frame so the next regular frame has a flow reference.
    for (CameraNode& cam : cameras) {
      if (!active[static_cast<std::size_t>(cam.index)]) continue;
      cam.render_current(mf.per_camera[static_cast<std::size_t>(cam.index)],
                         mf.frame_index);
      cam.flow_engine.rebase(cam.scratch);
    }

    // The full inspection resets the detect-or-track clock of every online
    // camera (staleness, drift and confidence all restart from here).
    if (features_on) {
      for (CameraNode& cam : cameras) {
        const auto i = static_cast<std::size_t>(cam.index);
        if (!active[i] || gate_cold(i)) continue;
        double mean_score = 1.0;
        if (!dets[i].empty()) {
          double acc = 0.0;
          for (const detect::Detection& d : dets[i]) acc += d.score;
          mean_score = acc / static_cast<double>(dets[i].size());
        }
        cam.pstate.note_detect(
            mean_score, 0, static_cast<int>(cam.tracker.tracks().size()));
        cam.pstate.reset_baseline(
            static_cast<int>(cam.tracker.tracks().size()));
        cam.lost.clear();  // the full inspection just re-planned everything
        if (frame_policy) frame_policy->reset(cam.index);
      }
    }
  }

  /// Per-camera regular-frame outcome, reduced into FrameStats afterwards so
  /// the parallel per-camera execution stays deterministic.
  struct CamFrameResult {
    double infer_ms = 0.0;
    double tracking_ms = 0.0;
    double distributed_ms = 0.0;
    double batching_ms = 0.0;
    // Detect-or-track outcome (policy layer active only). Reduced
    // sequentially in regular_frame_step so obs signals and the feature
    // trace are deterministic regardless of per-camera execution order.
    bool policy_decided = false;
    bool policy_detect = true;
    double drift_at_decide = 0.0;
    // Feature-trace row for this camera (recording only; empty otherwise).
    std::vector<double> trace_features;
    int trace_label = 0;

    /// Reset for reuse across frames without touching trace_features'
    /// capacity.
    void reset() {
      infer_ms = tracking_ms = distributed_ms = batching_ms = 0.0;
      policy_decided = false;
      policy_detect = true;
      drift_at_decide = 0.0;
      trace_features.clear();
      trace_label = 0;
    }
  };

  void regular_frame_step(const sim::MultiFrame& mf, FrameStats& stats,
                          std::vector<std::vector<geom::BBox>>& reported) {
    std::vector<CamFrameResult>& results = results_;
    results.resize(cameras.size());
    for (CamFrameResult& r : results) r.reset();
    // Cameras are independent (own tracker/RNG/frames); run them in
    // parallel, mirroring the real deployment where each smart camera is a
    // separate device.
    pool.parallel_for_each(cameras.size(), [&](std::size_t cam_index) {
      if (!active[cam_index]) return;  // dropped-out device: nothing runs
      regular_camera_step(cameras[cam_index], mf, reported[cam_index],
                          results[cam_index]);
    });
    int decided = 0, detects = 0;
    for (const CamFrameResult& r : results) {
      stats.camera_infer_ms.push_back(r.infer_ms);
      stats.tracking_ms = std::max(stats.tracking_ms, r.tracking_ms);
      stats.distributed_ms = std::max(stats.distributed_ms, r.distributed_ms);
      stats.batching_ms = std::max(stats.batching_ms, r.batching_ms);
      if (r.policy_decided) {
        ++decided;
        detects += r.policy_detect ? 1 : 0;
      }
    }
    if (frame_policy && obs::enabled() && decided > 0) {
      obs::MetricsRegistry& m = obs::metrics();
      m.counter("policy.decisions").add(static_cast<long>(decided));
      m.counter("policy.detects").add(static_cast<long>(detects));
      m.histogram("policy.detect_ratio")
          .record(static_cast<double>(detects) / static_cast<double>(decided));
      for (const CamFrameResult& r : results)
        if (r.policy_decided && r.policy_detect)
          m.histogram("policy.drift_at_detect").record(r.drift_at_decide);
    }
    if (feature_trace.is_open()) {
      // Camera-order flush keeps the trace byte-identical across thread
      // counts (rows were produced in parallel).
      std::ostringstream rows;
      rows.precision(17);
      for (const CamFrameResult& r : results) {
        if (r.trace_features.empty()) continue;
        rows << "{\"f\":[";
        for (std::size_t d = 0; d < r.trace_features.size(); ++d)
          rows << (d ? "," : "") << r.trace_features[d];
        rows << "],\"label\":" << r.trace_label << "}\n";
      }
      feature_trace << rows.str();
    }
  }

  void regular_camera_step(CameraNode& cam, const sim::MultiFrame& mf,
                           std::vector<geom::BBox>& cam_reported,
                           CamFrameResult& result) {
    const bool adopts_new = cfg.policy == Policy::kBalb ||
                            cfg.policy == Policy::kBalbInd ||
                            cfg.policy == Policy::kStaticPartition;
    {
      MVS_SPAN("pipeline.camera");
      const auto i = static_cast<std::size_t>(cam.index);
      const auto& gt = mf.per_camera[i];

      cam.render_current(gt, mf.frame_index);

      // --- tracking: optical flow + projection + slicing ---
      std::optional<obs::Span> stage_span;
      if (obs::enabled()) stage_span.emplace("pipeline.tracking");
      util::Stopwatch track_sw;
      cam.flow_engine.compute(cam.scratch, cam.flow,
                              tile_flow ? &pool : nullptr);
      const vision::FlowField& flow = cam.flow;
      // Velocity-fallback coasting only under an active policy layer: the
      // fixed pipeline (frame_policy == nullptr, even when recording a
      // feature trace) keeps the flow-only prediction bit-identical.
      cam.tracker.predict(flow, cam.render_scale, frame_policy != nullptr);
      if (frame_policy) {
        // Coast the lost-track search boxes on their last velocity; expire
        // entries that timed out or left the frame.
        for (auto it = cam.lost.begin(); it != cam.lost.end();) {
          it->box = it->box.shifted(it->velocity);
          const geom::BBox clipped =
              it->box.clamped(cam.frame_w, cam.frame_h);
          if (--it->ttl <= 0 || it->box.area() <= 0.0 ||
              clipped.area() < 0.3 * it->box.area()) {
            it = cam.lost.erase(it);
          } else {
            ++it;
          }
        }
      }
      cam.cull_departed_into(cam.step.dropped);
      for (long dropped : cam.step.dropped) {
        if (features_on) cam.pstate.note_departure();
        if (trace)
          trace->record({mf.frame_index, cam.index,
                         TraceEventType::kTrackDrop,
                         static_cast<std::uint64_t>(dropped), 0.0});
      }
      for (Ghost& g : cam.ghosts) {
        const geom::BBox fb{g.box.x / cam.render_scale,
                            g.box.y / cam.render_scale,
                            g.box.w / cam.render_scale,
                            g.box.h / cam.render_scale};
        const geom::Vec2 motion = vision::median_flow_in(flow, fb);
        g.box = g.box.shifted(
            {motion.x * cam.render_scale, motion.y * cam.render_scale});
      }
      // --- detect-or-track decision (mvs::policy) ---
      // The fixed kind never reaches here (frame_policy is null and
      // features_on is false), so the pre-policy pipeline runs untouched.
      bool do_detect = true;
      policy::CameraFeatures feats;
      if (features_on) {
        ++cam.pstate.frames_since_detect;
        std::vector<geom::BBox> track_boxes;
        for (const track::Track& t : cam.tracker.tracks())
          track_boxes.push_back(t.box);
        cam.pstate.add_drift(
            policy::mean_track_motion_px(flow, track_boxes, cam.render_scale));
        std::vector<geom::BBox> known = track_boxes;
        for (const Ghost& g : cam.ghosts) known.push_back(g.box);
        feats = cam.pstate.features(
            cam.tracker.tracks().size(), policy::normalized_residual(flow),
            policy::unexplained_motion_fraction(flow, known,
                                                cam.render_scale));
      }
      if (frame_policy) {
        std::optional<obs::Span> decide_span;
        if (obs::enabled()) decide_span.emplace("policy.decide");
        const policy::Decision decision =
            frame_policy->decide(cam.index, feats);
        do_detect = decision.detect;
        // The very next frame is a key frame: its full inspection re-plans
        // every track, so a partial-frame correction now is paid for in full
        // but useful for exactly one frame. Always coast into a key frame.
        if (cfg.horizon_frames > 0 &&
            (mf.frame_index + 1) % cfg.horizon_frames == 0)
          do_detect = false;
        result.policy_decided = true;
        result.policy_detect = decision.detect;
        result.drift_at_decide = feats.drift_px;
      }
      // Correlation-gated cold camera: coast track-only regardless of the
      // frame policy. The gate only cools views with zero activity, so this
      // frame is pure render + flow — no slices, no new-region search.
      if (gate_cold(i)) do_detect = false;

      if (!do_detect) {
        // Track-only frame: coast on the flow-projected tracks. No slices,
        // no batch plan, no detector RNG draws — zero GPU time this frame
        // (gpu_work[i] stays empty, so a hosting fleet merges nothing).
        result.tracking_ms = track_sw.elapsed_ms();
        stage_span.reset();
      } else {
        // Per-track slice selection (policy mode): a detect frame inspects
        // only the tracks that need correction — coasted two or more frames,
        // carrying a miss, or too young for a velocity estimate. A track
        // corrected on the previous frame coasts one more; a burst of
        // trigger-driven detect frames therefore pays for the needy track
        // (or lost-track search), not a full re-inspection of the camera.
        // The search region grows with coast length (capped so a healthy
        // box does not spill into the next size class). Fixed slicing keeps
        // the exact predicted boxes of every track (bit-identity).
        constexpr double kCoastSlackPx = 1.5;
        constexpr double kCoastSlackCapPx = 6.0;
        std::vector<long>& inspected_ids = cam.step.inspected_ids;
        inspected_ids.clear();
        std::vector<vision::SliceRegion>& slices = cam.step.slices;
        if (frame_policy) {
          std::vector<std::pair<long, geom::BBox>>& inspect =
              cam.step.inspect;
          inspect.clear();
          for (const track::Track& t : cam.tracker.tracks()) {
            if (t.frames_since_correct < 2 && t.missed == 0 &&
                t.has_velocity)
              continue;
            const double slack = std::min(
                kCoastSlackCapPx, kCoastSlackPx * t.frames_since_correct);
            inspect.emplace_back(t.id, t.box.expanded(slack));
            inspected_ids.push_back(t.id);
          }
          // Seed search slices from the lost list so a camera whose tracks
          // all died is not blind until the next key frame.
          for (const CameraNode::LostTrack& l : cam.lost)
            inspect.emplace_back(-1L, l.box.expanded(2.0 * kCoastSlackPx));
          vision::slice_regions_into(inspect, sizes, cam.frame_w,
                                     cam.frame_h, /*margin=*/8.0, slices);
        } else {
          cam.tracker.predicted_boxes_into(cam.step.predicted);
          vision::slice_regions_into(cam.step.predicted, sizes, cam.frame_w,
                                     cam.frame_h, /*margin=*/8.0, slices);
        }

        if (adopts_new) {
          // Moving pixels not explained by tracks or ghosts = new regions.
          std::vector<geom::BBox>& explained = cam.step.explained;
          explained.clear();
          for (const track::Track& t : cam.tracker.tracks())
            explained.push_back(t.box);
          for (const Ghost& g : cam.ghosts) explained.push_back(g.box);
          std::vector<geom::BBox>& fresh = cam.step.fresh;
          vision::extract_new_regions_into(flow, explained, cam.render_scale,
                                           {}, cam.step.regions, fresh);
          // Fig. 8 policy applied at inspection time: a camera only searches
          // for new objects inside cells it owns — inspecting a region whose
          // tracking it would never adopt is wasted GPU time.
          std::erase_if(fresh, [&](const geom::BBox& box) {
            if (!adopt_allowed(cam.index, box)) return true;
            switch (cfg.policy) {
              case Policy::kBalb:
                return !(distributed.valid() &&
                         distributed.should_adopt_new(cam.index, box));
              case Policy::kStaticPartition:
                return !(sp_masks_ready &&
                         sp_masks.owns(cam.index, box.center()));
              default:
                return false;  // BALB-Ind inspects everything it sees
            }
          });
          // A merged moving cluster (e.g. a queue released by a green light)
          // can span far more than one object; tile it into 256-class
          // slices, which batch far cheaper than serial 512-class
          // inspections.
          constexpr double kTile = 240.0;  // 240 + 2x8 margin -> class 256
          for (const geom::BBox& box : fresh) {
            const int tiles_x =
                std::max(1, static_cast<int>(std::ceil(box.w / kTile)));
            const int tiles_y =
                std::max(1, static_cast<int>(std::ceil(box.h / kTile)));
            for (int ty = 0; ty < tiles_y; ++ty) {
              for (int tx = 0; tx < tiles_x; ++tx) {
                const geom::BBox tile{box.x + tx * box.w / tiles_x,
                                      box.y + ty * box.h / tiles_y,
                                      box.w / tiles_x, box.h / tiles_y};
                vision::SliceRegion region;
                region.track_id = -1;
                region.size_class = sizes.quantize(tile);
                region.roi = sizes.expand_to_class(tile, region.size_class)
                                 .clamped(cam.frame_w, cam.frame_h);
                if (!region.roi.empty()) slices.push_back(region);
              }
            }
          }
        }
        result.tracking_ms = track_sw.elapsed_ms();
        stage_span.reset();

        // --- GPU batching: plan + assemble input tensors ---
        if (obs::enabled()) stage_span.emplace("gpu.batch");
        util::Stopwatch batch_sw;
        // Built directly in the fleet-facing demand slot: run_frame cleared
        // it, and writing in place keeps its capacity frame over frame.
        std::vector<geom::SizeClassId>& tasks = gpu_work[i].tasks;
        tasks.reserve(slices.size());
        for (const vision::SliceRegion& s : slices)
          tasks.push_back(s.size_class);
        gpu::plan_batches_into(tasks, cam.device, cam.step.batch_counts,
                               cam.step.plan);
        const gpu::BatchPlan& plan = cam.step.plan;
        assemble_batches(cam, cam.scratch.cur_frame(), slices);
        MVS_COUNT("gpu.tasks", tasks.size());
        MVS_COUNT("gpu.batches", plan.batches.size());
        MVS_HIST("gpu.plan_latency_ms", plan.actual_latency_ms);
        result.batching_ms = batch_sw.elapsed_ms();
        stage_span.reset();

        result.infer_ms = plan.actual_latency_ms;

        // --- partial-frame inspection ---
        std::vector<detect::Detection>& dets = cam.step.dets;
        dets.clear();
        for (const vision::SliceRegion& s : slices) {
          detector.detect_roi_append(gt, s.roi, sizes.size_of(s.size_class),
                                     cam.rng, dets);
        }
        nms_into(dets, 0.6, cam.step.nms_kept);
        // Post-NMS survivors become `dets` (the raw buffer becomes next
        // frame's NMS scratch) — same contents and order as the old
        // by-value `dets = nms(std::move(dets), 0.6)`.
        dets.swap(cam.step.nms_kept);

        // Trace-label baseline: what the tracker believed before the
        // detections corrected it (recording only).
        std::vector<std::pair<long, geom::BBox>> predicted_before;
        if (feature_trace.is_open())
          predicted_before = cam.tracker.predicted_boxes();
        // Snapshot so tracks removed by update() can enter the lost list
        // with their final box and velocity (policy mode only).
        std::vector<track::Track> pre_update;
        if (frame_policy) pre_update = cam.tracker.tracks();

        cam.tracker.update_into(dets, frame_policy ? &inspected_ids : nullptr,
                                cam.step.update);
        const track::FlowTracker::UpdateResult& update = cam.step.update;
        if (frame_policy) {
          // Searching past the next key frame is pointless — it re-plans.
          constexpr int kLostSearchTtl = 10;
          for (long removed : update.removed_track_ids) {
            for (const track::Track& t : pre_update) {
              if (t.id != removed) continue;
              cam.lost.push_back({t.box, t.velocity, kLostSearchTtl});
              break;
            }
          }
        }
        if (trace)
          for (long removed : update.removed_track_ids)
            trace->record({mf.frame_index, cam.index,
                           TraceEventType::kTrackDrop,
                           static_cast<std::uint64_t>(removed), 0.0});

        // --- distributed BALB stage ---
        if (obs::enabled()) stage_span.emplace("pipeline.distributed");
        util::Stopwatch dist_sw;
        int adopted = 0;
        for (std::size_t d : update.unmatched_detections) {
          const detect::Detection& det = dets[d];
          // Re-acquisition first: a detection landing on a lost-track search
          // box recovers an object this camera was already responsible for,
          // so it bypasses the new-object gates below (policy mode only —
          // the lost list is empty otherwise).
          bool reacquired = false;
          for (auto it = cam.lost.begin(); it != cam.lost.end(); ++it) {
            if (geom::iou(det.box, it->box) <= 0.1) continue;
            const long id = cam.tracker.add_track(det);
            cam.lost.erase(it);
            ++adopted;
            reacquired = true;
            if (trace)
              trace->record({mf.frame_index, cam.index,
                             TraceEventType::kAdoptNew,
                             static_cast<std::uint64_t>(id), 0.0});
            break;
          }
          if (reacquired) continue;
          // Detections overlapping a ghost belong to an object tracked
          // elsewhere; never adopt those as new.
          bool ghost_owned = false;
          for (const Ghost& g : cam.ghosts) {
            if (geom::iou(det.box, g.box) > 0.25) {
              ghost_owned = true;
              break;
            }
          }
          if (ghost_owned) continue;

          bool adopt = false;
          switch (cfg.policy) {
            case Policy::kBalbInd: adopt = true; break;
            case Policy::kBalb:
              adopt = distributed.valid() &&
                      distributed.should_adopt_new(cam.index, det.box);
              break;
            case Policy::kStaticPartition:
              adopt = sp_masks_ready &&
                      sp_masks.owns(cam.index, det.box.center());
              break;
            case Policy::kBalbCen:
            case Policy::kFull: break;
          }
          if (adopt && !adopt_allowed(cam.index, det.box)) adopt = false;
          // Under a detect-or-track policy, sparse inspection orphans
          // objects far more often (the assigned camera's track dies between
          // its inspections). This detection is already paid for and no
          // ghost claims it — no camera anywhere is tracking the object —
          // so the spatial-ownership gate (which exists to avoid wasted
          // SEARCH, not to discard hits in hand) must not drop it. Fixed
          // mode keeps the strict gate: its every-frame correction makes
          // orphaning a non-event, and bit-identity is contractual.
          if (!adopt && frame_policy) adopt = true;
          if (adopt) {
            const long id = cam.tracker.add_track(det);
            ++adopted;
            if (trace)
              trace->record({mf.frame_index, cam.index,
                             TraceEventType::kAdoptNew,
                             static_cast<std::uint64_t>(id), 0.0});
          }
        }

        int takeovers = 0;
        if (cfg.policy == Policy::kBalb && distributed.valid()) {
          takeovers = takeover_pass(cam, mf.frame_index);
        }
        result.distributed_ms = dist_sw.elapsed_ms();
        stage_span.reset();

        if (features_on) {
          // Inspection outcome feeds the next decisions: churn (tracks
          // added + dropped) and the mean detection confidence, which
          // decays until the next detect.
          double mean_score = 1.0;
          if (!dets.empty()) {
            double acc = 0.0;
            for (const detect::Detection& d : dets) acc += d.score;
            mean_score = acc / static_cast<double>(dets.size());
          }
          const int churn_events =
              adopted + takeovers +
              static_cast<int>(update.removed_track_ids.size());
          if (feature_trace.is_open()) {
            // Counterfactual label: did this inspection change anything the
            // coasting tracker would have gotten wrong? New/lost tracks, or
            // a matched track whose corrected box disagrees with the flow
            // prediction.
            constexpr double kLabelIou = 0.85;
            bool corrected = false;
            for (long id : update.matched_track_ids) {
              const track::Track* now = cam.tracker.find(id);
              if (!now) continue;
              for (const auto& [pid, pbox] : predicted_before) {
                if (pid != id) continue;
                if (geom::iou(pbox, now->box) < kLabelIou) corrected = true;
                break;
              }
              if (corrected) break;
            }
            result.trace_features = feats.to_vector();
            result.trace_label = (churn_events > 0 || corrected) ? 1 : 0;
          }
          cam.pstate.note_detect(
              mean_score, churn_events,
              static_cast<int>(cam.tracker.tracks().size()));
        }
      }

      cam.scratch.advance();  // this frame becomes the next flow reference
      for (const track::Track& t : cam.tracker.tracks())
        cam_reported.push_back(t.box);
    }
  }

  /// Distributed-stage case 2: ghosts whose assigned camera lost sight of
  /// them are taken over by the highest-priority camera that still sees
  /// them — decided locally from the shared models, no communication.
  /// Returns the number of takeovers (policy churn bookkeeping).
  int takeover_pass(CameraNode& cam, long frame_index) {
    int takeovers = 0;
    const auto i = static_cast<std::size_t>(cam.index);
    std::vector<Ghost>& kept = cam.step.ghosts_kept;
    kept.clear();
    for (Ghost& g : cam.ghosts) {
      const geom::BBox clipped = g.box.clamped(cam.frame_w, cam.frame_h);
      if (g.box.area() <= 0.0 || clipped.area() < 0.3 * g.box.area())
        continue;  // left my view too; drop
      // A dropped-out assigned camera definitely lost the object — the
      // model prediction only matters while the device is alive.
      const bool assigned_sees =
          g.assigned_cam >= 0 &&
          active[static_cast<std::size_t>(g.assigned_cam)] &&
          (g.assigned_cam == cam.index ||
           associator->predict_present(i,
                                       static_cast<std::size_t>(g.assigned_cam),
                                       g.box));
      if (assigned_sees) {
        kept.push_back(g);
        continue;
      }
      // The assigned camera (apparently) lost it; elect a successor among
      // the cameras still online.
      std::vector<int>& visible = cam.step.visible;
      visible.clear();
      visible.push_back(cam.index);
      for (std::size_t i2 = 0; i2 < cameras.size(); ++i2) {
        if (i2 == i || !active[i2]) continue;
        if (associator->predict_present(i, i2, g.box))
          visible.push_back(static_cast<int>(i2));
      }
      const int successor = distributed.takeover_camera(visible);
      if (successor == cam.index) {
        detect::Detection det;
        det.box = g.box;
        det.score = 0.5;
        cam.tracker.add_track(det);  // inspected from the next frame on
        ++takeovers;
        if (trace)
          trace->record({frame_index, cam.index, TraceEventType::kTakeover,
                         g.key, 0.0});
      } else {
        g.assigned_cam = successor;
        kept.push_back(g);
      }
    }
    // Swap, don't move: the retired ghost buffer becomes next frame's
    // survivor scratch.
    cam.ghosts.swap(kept);
    return takeovers;
  }

  /// Copy every slice's pixels (at render resolution) into a contiguous
  /// batch buffer — the real data-movement cost behind GPU batching, which
  /// is what the paper's "Batching" overhead column measures.
  void assemble_batches(CameraNode& cam, const vision::Image& frame,
                        const std::vector<vision::SliceRegion>& slices) {
    std::size_t total = 0;
    for (const vision::SliceRegion& s : slices) {
      const int side = std::max(
          1, static_cast<int>(sizes.size_of(s.size_class) / cam.render_scale));
      total += static_cast<std::size_t>(side) * static_cast<std::size_t>(side);
    }
    cam.batch_buffer.resize(total);
    std::size_t offset = 0;
    for (const vision::SliceRegion& s : slices) {
      const int side = std::max(
          1, static_cast<int>(sizes.size_of(s.size_class) / cam.render_scale));
      const int x0 = static_cast<int>(s.roi.x / cam.render_scale);
      const int y0 = static_cast<int>(s.roi.y / cam.render_scale);
      for (int y = 0; y < side; ++y)
        for (int x = 0; x < side; ++x)
          cam.batch_buffer[offset++] = frame.at_clamped(x0 + x, y0 + y);
    }
  }

  /// See Pipeline::skip_frame(): advance the player and frame counter (key
  /// cadence and dropout schedules stay frame-indexed) without processing.
  /// gpu_work is cleared so last_gpu_work() reports zero demand.
  void skip_frame() {
    ++frames_run;
    player.next_into(mf_);
    for (CameraGpuWork& w : gpu_work) {
      w.full_frame = false;
      w.tasks.clear();
    }
  }

  // ---- members -----------------------------------------------------------

  PipelineConfig cfg;
  sim::ScenarioPlayer player;
  std::string scenario_name_;
  geom::SizeClassSet sizes;
  detect::SimulatedDetector detector;
  std::unique_ptr<assoc::CrossCameraAssociator> associator;
  std::vector<CameraNode> cameras;
  std::unique_ptr<net::Transport> transport;
  /// active[i] != 0 iff camera i currently participates in the schedule;
  /// mutated only between frames (refresh_active), read by parallel steps.
  std::vector<char> active;

  struct CellCache {
    geom::Grid grid;
    std::vector<std::vector<int>> coverage;
    std::vector<std::uint64_t> region_key;
  };
  std::vector<CellCache> cell_cache;

  core::DistributedStage distributed;
  TraceRecorder* trace = nullptr;
  /// Detect-or-track layer; null when PolicyConfig::kind is kFixed (the
  /// bit-identical fast path).
  std::unique_ptr<policy::FramePolicy> frame_policy;
  /// JSONL training-trace sink ({"f": [...], "label": 0|1} per camera per
  /// detect frame); closed when PolicyConfig::feature_trace is empty.
  std::ofstream feature_trace;
  /// Per-camera feature bookkeeping runs (policy active OR recording).
  bool features_on = false;
  /// Owned when no shared pool was injected; `pool` is the one in use.
  std::unique_ptr<util::ThreadPool> owned_pool;
  util::ThreadPool& pool;
  /// Tile flow rows across idle workers (fleet smaller than the pool).
  bool tile_flow = false;
  /// Per-camera GPU demand of the most recent frame (fleet arbiter input).
  std::vector<CameraGpuWork> gpu_work;
  /// Evaluation frames run so far; key-frame cadence and transport/dropout
  /// schedules are indexed by this counter.
  long frames_run = 0;
  /// Every frame's stats since construction (result() / run() snapshots);
  /// not grown when cfg.keep_history is off.
  std::vector<FrameStats> all_frames;
  core::CameraMasks sp_masks;
  bool sp_masks_ready = false;
  metrics::ObjectRecall recall;

  // Frame-scope working memory, reused tick over tick (DESIGN.md §11): the
  // current multi-frame, the stats record run_frame_ref hands out, the
  // per-camera reported boxes fed to the recall metric, and the per-camera
  // regular-frame results reduced into stats.
  sim::MultiFrame mf_;
  FrameStats stats_;
  std::vector<std::vector<geom::BBox>> reported_;
  std::vector<CamFrameResult> results_;

  /// ReXCam-style correlation gate; null unless
  /// PolicyConfig::correlation_gate (the bit-identical default).
  std::unique_ptr<policy::CorrelationGate> corr_gate;
  std::vector<int> gate_activity_;
  /// gate_cold_[i] != 0 → camera i is online but gated cold this frame: key
  /// frames skip its full inspection, regular frames coast track-only.
  /// Empty when no gate is configured.
  std::vector<char> gate_cold_;
  bool gate_cold(std::size_t i) const {
    return !gate_cold_.empty() && gate_cold_[i] != 0;
  }

  /// Day/night detection-quality schedule (city scenarios); disabled for the
  /// classic scenarios, where `detector` never changes.
  sim::QualitySchedule quality_;
  detect::SimulatedDetector day_detector_;
  detect::SimulatedDetector night_detector_;
  bool is_night_ = false;
};

const FrameStats& Pipeline::Impl::run_frame() {
  MVS_SPAN("pipeline.frame");
  const long f = frames_run++;
  player.next_into(mf_);
  const sim::MultiFrame& mf = mf_;
  if (quality_.enabled) {
    // Day/night phase flip: swap in the precomputed night (or day) detector.
    // The detector is stateless (config only), so this is a value copy.
    const bool night = quality_.is_night(mf.time_s);
    if (night != is_night_) {
      is_night_ = night;
      detector = night ? night_detector_ : day_detector_;
    }
  }
  if (cfg.paired_rng) {
    // Common random numbers (see PipelineConfig::paired_rng): every
    // camera's detector stream restarts from a (seed, camera, frame) hash,
    // decoupling draw outcomes from how many draws earlier frames made.
    for (CameraNode& cam : cameras) {
      std::uint64_t h = cfg.seed;
      h ^= 0x9E3779B97F4A7C15ULL *
           (static_cast<std::uint64_t>(cam.index) + 1);
      h ^= 0xBF58476D1CE4E5B9ULL *
           (static_cast<std::uint64_t>(mf.frame_index) + 1);
      h ^= h >> 31;
      cam.rng = util::Rng(h);
    }
  }
  // Reset the reusable stats record: salvage the per-camera vector's
  // capacity, default-construct everything else.
  {
    std::vector<double> infer = std::move(stats_.camera_infer_ms);
    infer.clear();
    stats_ = FrameStats{};
    stats_.camera_infer_ms = std::move(infer);
  }
  FrameStats& stats = stats_;
  stats.frame = mf.frame_index;
  stats.key_frame = (f % cfg.horizon_frames == 0);

  // The frame's GPU demand is rebuilt from scratch each frame.
  for (CameraGpuWork& w : gpu_work) {
    w.full_frame = false;
    w.tasks.clear();
  }

  // Dropout transitions apply before the frame runs; a camera may rejoin
  // wherever a full inspection happens (key frames, or any frame under
  // the Full policy).
  refresh_active(f, mf.frame_index,
                 stats.key_frame || cfg.policy == Policy::kFull);
  for (char a : active) stats.cameras_online += (a != 0);

  // Correlation gate (sequential, before the parallel section): a camera is
  // hot when it is an entry point, has live tracks, is reachable from a
  // camera that does, or is inside its cooldown hold. Cold cameras skip
  // detection entirely this frame.
  if (corr_gate) {
    for (std::size_t i = 0; i < cameras.size(); ++i) {
      const CameraNode& cam = cameras[i];
      gate_activity_[i] =
          active[i] ? static_cast<int>(cam.tracker.tracks().size() +
                                       cam.ghosts.size() + cam.lost.size())
                    : 0;
    }
    corr_gate->refresh(gate_activity_);
    int cold = 0;
    for (std::size_t i = 0; i < cameras.size(); ++i) {
      gate_cold_[i] =
          (active[i] && !corr_gate->hot(static_cast<int>(i))) ? 1 : 0;
      cold += gate_cold_[i];
    }
    if (obs::enabled() && !cameras.empty())
      obs::metrics()
          .histogram("policy.gate_cold_frac")
          .record(static_cast<double>(cold) /
                  static_cast<double>(cameras.size()));
  }

  std::vector<std::vector<geom::BBox>>& reported = reported_;
  reported.resize(cameras.size());
  for (std::vector<geom::BBox>& r : reported) r.clear();
  if (cfg.policy == Policy::kFull) {
    full_frame_step(mf, stats, reported);
  } else if (stats.key_frame) {
    key_frame_step(mf, f, stats, reported);
  } else {
    regular_frame_step(mf, stats, reported);
  }

  stats.slowest_infer_ms = 0.0;
  for (double v : stats.camera_infer_ms)
    stats.slowest_infer_ms = std::max(stats.slowest_infer_ms, v);

  // Per-camera GPU demand share (policy feature, one-frame lag): computed
  // sequentially after the parallel section so it is deterministic.
  if (features_on && stats.camera_infer_ms.size() == cameras.size()) {
    double total = 0.0;
    for (double v : stats.camera_infer_ms) total += v;
    for (std::size_t i = 0; i < cameras.size(); ++i)
      cameras[i].pstate.demand_share =
          total > 0.0 ? stats.camera_infer_ms[i] / total : 0.0;
  }

  stats.frame_recall = recall.add_frame(mf.per_camera, reported);
  std::size_t gt = 0;
  for (const auto& cam_gt : mf.per_camera) gt += cam_gt.size();
  stats.gt_objects = gt;
  for (const CameraNode& cam : cameras)
    stats.tracked_objects += cam.tracker.tracks().size();

  if (obs::enabled()) {
    obs::MetricsRegistry& m = obs::metrics();
    m.counter("pipeline.frames").add(1);
    if (stats.key_frame) m.counter("pipeline.key_frames").add(1);
    const bool central_ran = stats.key_frame && cfg.policy != Policy::kFull &&
                             cfg.policy != Policy::kBalbInd;
    if (central_ran) {
      // Wall-clock stage time: fingerprinted by count only (durations vary
      // run to run); comm/queue are simulated (netsim) and deterministic.
      m.histogram("pipeline.central_wall_ms").record(stats.central_ms);
      m.histogram("pipeline.comm_ms").record(stats.comm_ms);
      m.histogram("pipeline.queue_ms").record(stats.queue_ms);
    } else if (!stats.key_frame && cfg.policy != Policy::kFull) {
      m.histogram("pipeline.tracking_wall_ms").record(stats.tracking_ms);
      m.histogram("pipeline.batching_wall_ms").record(stats.batching_ms);
      m.histogram("pipeline.distributed_wall_ms").record(stats.distributed_ms);
    }
    m.histogram("pipeline.infer_ms").record(stats.slowest_infer_ms);
    // Histograms, not gauges: fleet sessions run frames on pool threads, and
    // histogram merges are order-independent (gauge last-writer-wins is not).
    m.histogram("pipeline.recall").record(stats.frame_recall);
    m.histogram("pipeline.cameras_online").record(stats.cameras_online);
  }

  if (cfg.keep_history) all_frames.push_back(stats);
  if (cfg.verbose && f % 50 == 0)
    util::log_info("frame ", f, " recall=", stats.frame_recall,
                   " slowest=", stats.slowest_infer_ms, "ms");
  return stats;
}

Pipeline::Pipeline(const std::string& scenario_name,
                   const PipelineConfig& config, util::ThreadPool* shared_pool)
    : config_(config),
      impl_(std::make_unique<Impl>(scenario_name, config, shared_pool)) {}

Pipeline::~Pipeline() = default;

void Pipeline::attach_trace(TraceRecorder* trace) { impl_->trace = trace; }

void Pipeline::set_tight_masks(bool tight) {
  config_.tight_masks = tight;
  impl_->cfg.tight_masks = tight;
}

FrameStats Pipeline::run_frame() { return impl_->run_frame(); }

const FrameStats& Pipeline::run_frame_ref() { return impl_->run_frame(); }

void Pipeline::skip_frame() { impl_->skip_frame(); }

const sim::MultiFrame& Pipeline::current_frame() const { return impl_->mf_; }

const std::vector<std::vector<geom::BBox>>& Pipeline::last_reported() const {
  return impl_->reported_;
}

const std::vector<CameraGpuWork>& Pipeline::last_gpu_work() const {
  return impl_->gpu_work;
}

std::size_t Pipeline::camera_count() const { return impl_->cameras.size(); }

std::vector<gpu::DeviceProfile> Pipeline::devices() const {
  return impl_->devices();
}

const sim::Scenario& Pipeline::scenario() const {
  return impl_->player.scenario();
}

PipelineResult Pipeline::result() const {
  PipelineResult result;
  result.scenario = impl_->scenario_name_;
  result.policy = config_.policy;
  result.frames = impl_->all_frames;
  result.object_recall = impl_->recall.recall();
  return result;
}

PipelineResult Pipeline::run(int frames) {
  const std::size_t start = impl_->all_frames.size();
  for (int f = 0; f < frames; ++f) impl_->run_frame();
  PipelineResult result;
  result.scenario = impl_->scenario_name_;
  result.policy = config_.policy;
  result.frames.assign(impl_->all_frames.begin() +
                           static_cast<std::ptrdiff_t>(start),
                       impl_->all_frames.end());
  result.object_recall = impl_->recall.recall();
  return result;
}

namespace {
double mean_over_frames(const std::vector<FrameStats>& frames,
                        double FrameStats::*member) {
  if (frames.empty()) return 0.0;
  double acc = 0.0;
  for (const FrameStats& f : frames) acc += f.*member;
  return acc / static_cast<double>(frames.size());
}
}  // namespace

double PipelineResult::mean_slowest_infer_ms() const {
  return mean_over_frames(frames, &FrameStats::slowest_infer_ms);
}
double PipelineResult::mean_central_ms() const {
  return mean_over_frames(frames, &FrameStats::central_ms);
}
double PipelineResult::mean_tracking_ms() const {
  return mean_over_frames(frames, &FrameStats::tracking_ms);
}
double PipelineResult::mean_distributed_ms() const {
  return mean_over_frames(frames, &FrameStats::distributed_ms);
}
double PipelineResult::mean_batching_ms() const {
  return mean_over_frames(frames, &FrameStats::batching_ms);
}
double PipelineResult::mean_comm_ms() const {
  return mean_over_frames(frames, &FrameStats::comm_ms);
}
double PipelineResult::mean_queue_ms() const {
  return mean_over_frames(frames, &FrameStats::queue_ms);
}
long PipelineResult::total_retries() const {
  long n = 0;
  for (const FrameStats& f : frames) n += f.retries;
  return n;
}
long PipelineResult::total_dropped_msgs() const {
  long n = 0;
  for (const FrameStats& f : frames) n += f.dropped_msgs;
  return n;
}

}  // namespace mvs::runtime

#pragma once
// Scheduling policies evaluated in the paper (Sec. IV-C baselines).

#include <string>

namespace mvs::runtime {

enum class Policy {
  kFull,             ///< full-frame detection on every frame, every camera
  kBalbInd,          ///< per-camera BALB slicing/batching, no cross-camera sharing
  kBalbCen,          ///< central stage only; no distributed stage
  kBalb,             ///< complete BALB: central + distributed stages
  kStaticPartition,  ///< offline power-proportional region partitioning
};

inline const char* to_string(Policy p) {
  switch (p) {
    case Policy::kFull: return "Full";
    case Policy::kBalbInd: return "BALB-Ind";
    case Policy::kBalbCen: return "BALB-Cen";
    case Policy::kBalb: return "BALB";
    case Policy::kStaticPartition: return "SP";
  }
  return "?";
}

}  // namespace mvs::runtime

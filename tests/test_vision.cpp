#include <gtest/gtest.h>

#include "vision/image.hpp"
#include "vision/optical_flow.hpp"
#include "vision/regions.hpp"
#include "vision/renderer.hpp"

namespace mvs::vision {
namespace {

Renderer small_renderer() {
  Renderer::Config cfg;
  cfg.width = 160;
  cfg.height = 96;
  cfg.noise_amplitude = 2;
  return Renderer(cfg);
}

TEST(Image, ConstructAndAccess) {
  Image img(4, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.at(3, 2), 7);
  img.set(1, 1, 42);
  EXPECT_EQ(img.at(1, 1), 42);
}

TEST(Image, ClampedRead) {
  Image img(2, 2);
  img.set(0, 0, 10);
  img.set(1, 1, 20);
  EXPECT_EQ(img.at_clamped(-5, -5), 10);
  EXPECT_EQ(img.at_clamped(10, 10), 20);
}

TEST(Image, Downsample) {
  Image img(4, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) img.set(x, y, 100);
  const Image half = img.downsampled();
  EXPECT_EQ(half.width(), 2);
  EXPECT_EQ(half.height(), 2);
  EXPECT_EQ(half.at(0, 0), 100);
}

TEST(Image, MeanAbsDiff) {
  Image a(2, 2, 10), b(2, 2, 14);
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, b), 4.0);
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, a), 0.0);
}

TEST(Renderer, Deterministic) {
  const Renderer r = small_renderer();
  const std::vector<RenderObject> objs = {{42, {30, 30, 20, 12}}};
  const Image a = r.render(objs, 5, 1);
  const Image b = r.render(objs, 5, 1);
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, b), 0.0);
}

TEST(Renderer, FrameNoiseVaries) {
  const Renderer r = small_renderer();
  const Image a = r.render({}, 1, 1);
  const Image b = r.render({}, 2, 1);
  EXPECT_GT(mean_abs_diff(a, b), 0.1);  // noise differs
  EXPECT_LT(mean_abs_diff(a, b), 6.0);  // but background is static
}

TEST(Renderer, ObjectsBrighterThanBackground) {
  const Renderer r = small_renderer();
  const Image bg = r.render({}, 1, 1);
  const Image with = r.render({{7, {40, 40, 30, 20}}}, 1, 1);
  // Pixels inside the object region changed substantially.
  double diff = 0.0;
  for (int y = 42; y < 58; ++y)
    for (int x = 42; x < 68; ++x)
      diff += std::abs(static_cast<int>(bg.at(x, y)) -
                       static_cast<int>(with.at(x, y)));
  EXPECT_GT(diff / (16 * 26), 10.0);
}

TEST(OpticalFlow, ZeroMotionOnStaticScene) {
  const Renderer r = small_renderer();
  const std::vector<RenderObject> objs = {{3, {50, 40, 24, 16}}};
  const Image a = r.render(objs, 1, 1);
  const Image b = r.render(objs, 2, 1);  // same pose, new sensor noise
  const OpticalFlow flow;
  const FlowField field = flow.compute(a, b);
  EXPECT_LT(mean_flow_magnitude(field), 0.3);
}

class FlowTranslation : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FlowTranslation, RecoversObjectMotion) {
  const auto [dx, dy] = GetParam();
  const Renderer r = small_renderer();
  const geom::BBox start{60, 40, 28, 18};
  const Image a = r.render({{9, start}}, 1, 1);
  const Image b = r.render({{9, start.shifted({static_cast<double>(dx),
                                               static_cast<double>(dy)})}},
                           2, 1);
  const OpticalFlow flow;
  const FlowField field = flow.compute(a, b);
  const geom::Vec2 motion = median_flow_in(field, start);
  EXPECT_NEAR(motion.x, dx, 1.6);
  EXPECT_NEAR(motion.y, dy, 1.6);
}

INSTANTIATE_TEST_SUITE_P(
    Shifts, FlowTranslation,
    ::testing::Values(std::pair{3, 0}, std::pair{-3, 0}, std::pair{0, 3},
                      std::pair{0, -2}, std::pair{4, 2}, std::pair{-2, -3},
                      std::pair{6, 0}, std::pair{0, 5}));

TEST(OpticalFlow, MedianFlowEmptyBoxIsZero) {
  FlowField field;
  field.block_size = 8;
  field.cols = 2;
  field.rows = 2;
  field.flow.assign(4, {5.0, 5.0});
  field.residual.assign(4, 0.0);
  const geom::Vec2 motion = median_flow_in(field, {100, 100, 4, 4});
  EXPECT_DOUBLE_EQ(motion.x, 0.0);
}

TEST(NewRegions, FindsUnexplainedMovingObject) {
  const Renderer r = small_renderer();
  const geom::BBox moving{60, 40, 24, 16};
  const Image a = r.render({{5, moving}}, 1, 1);
  const Image b = r.render({{5, moving.shifted({5, 0})}}, 2, 1);
  const OpticalFlow flow;
  const FlowField field = flow.compute(a, b);

  // No predicted boxes -> the mover must surface as a new region.
  const auto regions = extract_new_regions(field, {}, 1.0);
  ASSERT_FALSE(regions.empty());
  bool covers = false;
  for (const geom::BBox& region : regions)
    if (geom::coverage(moving, region) > 0.5) covers = true;
  EXPECT_TRUE(covers);
}

TEST(NewRegions, ExplainedObjectSuppressed) {
  const Renderer r = small_renderer();
  const geom::BBox moving{60, 40, 24, 16};
  const Image a = r.render({{5, moving}}, 1, 1);
  const Image b = r.render({{5, moving.shifted({5, 0})}}, 2, 1);
  const OpticalFlow flow;
  const FlowField field = flow.compute(a, b);

  const auto regions =
      extract_new_regions(field, {moving.expanded(8.0)}, 1.0);
  for (const geom::BBox& region : regions)
    EXPECT_LT(geom::coverage(moving, region), 0.5);
}

TEST(NewRegions, ScaleMapsToLogicalPixels) {
  FlowField field;
  field.block_size = 8;
  field.cols = 4;
  field.rows = 4;
  field.flow.assign(16, {0.0, 0.0});
  field.residual.assign(16, 0.0);
  // One moving block at (2,2).
  field.flow[2 * 4 + 2] = {4.0, 0.0};
  NewRegionConfig cfg;
  cfg.min_area = 1.0;
  cfg.merge_margin = 0.0;
  const auto regions = extract_new_regions(field, {}, 4.0, cfg);
  ASSERT_EQ(regions.size(), 1u);
  // Block (2,2) covers flow pixels [16,24)x[16,24) -> logical [64,96).
  EXPECT_DOUBLE_EQ(regions[0].x, 64.0);
  EXPECT_DOUBLE_EQ(regions[0].w, 32.0);
}

TEST(SliceRegions, QuantizedAndClamped) {
  const geom::SizeClassSet sizes;
  const std::vector<std::pair<long, geom::BBox>> predicted = {
      {7, {50, 50, 30, 30}},    // -> class 0 (64)
      {8, {1200, 600, 90, 90}}, // near border -> clamped
  };
  const auto slices = slice_regions(predicted, sizes, 1280, 704);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].track_id, 7);
  EXPECT_EQ(slices[0].size_class, 0);
  EXPECT_DOUBLE_EQ(slices[0].roi.w, 64.0);
  EXPECT_LE(slices[1].roi.x2(), 1280.0);
  EXPECT_LE(slices[1].roi.y2(), 704.0);
}

TEST(SliceRegions, EmptyInput) {
  const geom::SizeClassSet sizes;
  EXPECT_TRUE(slice_regions({}, sizes, 100, 100).empty());
}

}  // namespace
}  // namespace mvs::vision

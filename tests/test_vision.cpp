#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "vision/image.hpp"
#include "vision/optical_flow.hpp"
#include "vision/regions.hpp"
#include "vision/renderer.hpp"

namespace mvs::vision {
namespace {

// ---- golden reference implementations ------------------------------------
// Straight-line copies of the pre-optimization kernels (double-accumulating
// SAD over at_clamped reads, pyramids rebuilt per call). The optimized
// kernels must reproduce their outputs BIT-identically.

double reference_block_sad(const Image& a, int ax, int ay, const Image& b,
                           int bx, int by, int size) {
  double sad = 0.0;
  for (int dy = 0; dy < size; ++dy)
    for (int dx = 0; dx < size; ++dx)
      sad += std::abs(static_cast<int>(a.at_clamped(ax + dx, ay + dy)) -
                      static_cast<int>(b.at_clamped(bx + dx, by + dy)));
  return sad;
}

FlowField reference_flow(const OpticalFlow::Config& cfg, const Image& prev,
                         const Image& cur) {
  std::vector<Image> pa{prev}, pb{cur};
  for (int l = 1; l < cfg.pyramid_levels; ++l) {
    if (pa.back().width() < 2 * cfg.block_size ||
        pa.back().height() < 2 * cfg.block_size)
      break;
    pa.push_back(pa.back().downsampled());
    pb.push_back(pb.back().downsampled());
  }
  const int levels = static_cast<int>(pa.size());

  FlowField field;
  field.block_size = cfg.block_size;
  field.cols = std::max(1, prev.width() / cfg.block_size);
  field.rows = std::max(1, prev.height() / cfg.block_size);
  field.flow.assign(static_cast<std::size_t>(field.cols) *
                        static_cast<std::size_t>(field.rows),
                    {0.0, 0.0});
  field.residual.assign(field.flow.size(), 0.0);

  std::vector<geom::Vec2> coarse;
  int ccols = 0, crows = 0;
  for (int l = levels - 1; l >= 0; --l) {
    const Image& ia = pa[static_cast<std::size_t>(l)];
    const Image& ib = pb[static_cast<std::size_t>(l)];
    const int cols = std::max(1, ia.width() / cfg.block_size);
    const int rows = std::max(1, ia.height() / cfg.block_size);
    std::vector<geom::Vec2> est(static_cast<std::size_t>(cols) *
                                static_cast<std::size_t>(rows));
    std::vector<double> res(est.size(), 0.0);

    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const int bx = c * cfg.block_size;
        const int by = r * cfg.block_size;
        geom::Vec2 seed{0.0, 0.0};
        if (!coarse.empty()) {
          const int pc = std::min(c / 2, ccols - 1);
          const int pr = std::min(r / 2, crows - 1);
          const geom::Vec2& s =
              coarse[static_cast<std::size_t>(pr) *
                         static_cast<std::size_t>(ccols) +
                     static_cast<std::size_t>(pc)];
          seed = {s.x * 2.0, s.y * 2.0};
        }
        const int sx = static_cast<int>(std::lround(seed.x));
        const int sy = static_cast<int>(std::lround(seed.y));

        double best = std::numeric_limits<double>::infinity();
        int best_dx = sx, best_dy = sy;
        for (int dy = sy - cfg.search_radius; dy <= sy + cfg.search_radius;
             ++dy) {
          for (int dx = sx - cfg.search_radius; dx <= sx + cfg.search_radius;
               ++dx) {
            const double sad =
                reference_block_sad(ia, bx, by, ib, bx + dx, by + dy,
                                    cfg.block_size);
            const double penalty = 0.1 * (std::abs(dx) + std::abs(dy));
            if (sad + penalty < best) {
              best = sad + penalty;
              best_dx = dx;
              best_dy = dy;
            }
          }
        }
        est[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
            static_cast<std::size_t>(c)] = {static_cast<double>(best_dx),
                                            static_cast<double>(best_dy)};
        res[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
            static_cast<std::size_t>(c)] =
            best / static_cast<double>(cfg.block_size * cfg.block_size);
      }
    }
    coarse = std::move(est);
    ccols = cols;
    crows = rows;
    if (l == 0) {
      field.cols = cols;
      field.rows = rows;
      field.flow = coarse;
      field.residual = std::move(res);
    }
  }
  return field;
}

Image random_image(int w, int h, util::Rng& rng) {
  Image img(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      img.set(x, y, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
  return img;
}

void expect_fields_bit_identical(const FlowField& a, const FlowField& b) {
  ASSERT_EQ(a.cols, b.cols);
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.block_size, b.block_size);
  ASSERT_EQ(a.flow.size(), b.flow.size());
  ASSERT_EQ(a.residual.size(), b.residual.size());
  for (std::size_t i = 0; i < a.flow.size(); ++i) {
    EXPECT_EQ(a.flow[i].x, b.flow[i].x) << "flow.x mismatch at " << i;
    EXPECT_EQ(a.flow[i].y, b.flow[i].y) << "flow.y mismatch at " << i;
    EXPECT_EQ(a.residual[i], b.residual[i]) << "residual mismatch at " << i;
  }
}

Renderer small_renderer() {
  Renderer::Config cfg;
  cfg.width = 160;
  cfg.height = 96;
  cfg.noise_amplitude = 2;
  return Renderer(cfg);
}

TEST(Image, ConstructAndAccess) {
  Image img(4, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.at(3, 2), 7);
  img.set(1, 1, 42);
  EXPECT_EQ(img.at(1, 1), 42);
}

TEST(Image, ClampedRead) {
  Image img(2, 2);
  img.set(0, 0, 10);
  img.set(1, 1, 20);
  EXPECT_EQ(img.at_clamped(-5, -5), 10);
  EXPECT_EQ(img.at_clamped(10, 10), 20);
}

TEST(Image, Downsample) {
  Image img(4, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) img.set(x, y, 100);
  const Image half = img.downsampled();
  EXPECT_EQ(half.width(), 2);
  EXPECT_EQ(half.height(), 2);
  EXPECT_EQ(half.at(0, 0), 100);
}

TEST(Image, MeanAbsDiff) {
  Image a(2, 2, 10), b(2, 2, 14);
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, b), 4.0);
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, a), 0.0);
}

TEST(Renderer, Deterministic) {
  const Renderer r = small_renderer();
  const std::vector<RenderObject> objs = {{42, {30, 30, 20, 12}}};
  const Image a = r.render(objs, 5, 1);
  const Image b = r.render(objs, 5, 1);
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, b), 0.0);
}

TEST(Renderer, FrameNoiseVaries) {
  const Renderer r = small_renderer();
  const Image a = r.render({}, 1, 1);
  const Image b = r.render({}, 2, 1);
  EXPECT_GT(mean_abs_diff(a, b), 0.1);  // noise differs
  EXPECT_LT(mean_abs_diff(a, b), 6.0);  // but background is static
}

TEST(Renderer, ObjectsBrighterThanBackground) {
  const Renderer r = small_renderer();
  const Image bg = r.render({}, 1, 1);
  const Image with = r.render({{7, {40, 40, 30, 20}}}, 1, 1);
  // Pixels inside the object region changed substantially.
  double diff = 0.0;
  for (int y = 42; y < 58; ++y)
    for (int x = 42; x < 68; ++x)
      diff += std::abs(static_cast<int>(bg.at(x, y)) -
                       static_cast<int>(with.at(x, y)));
  EXPECT_GT(diff / (16 * 26), 10.0);
}

TEST(OpticalFlow, ZeroMotionOnStaticScene) {
  const Renderer r = small_renderer();
  const std::vector<RenderObject> objs = {{3, {50, 40, 24, 16}}};
  const Image a = r.render(objs, 1, 1);
  const Image b = r.render(objs, 2, 1);  // same pose, new sensor noise
  const OpticalFlow flow;
  const FlowField field = flow.compute(a, b);
  EXPECT_LT(mean_flow_magnitude(field), 0.3);
}

class FlowTranslation : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FlowTranslation, RecoversObjectMotion) {
  const auto [dx, dy] = GetParam();
  const Renderer r = small_renderer();
  const geom::BBox start{60, 40, 28, 18};
  const Image a = r.render({{9, start}}, 1, 1);
  const Image b = r.render({{9, start.shifted({static_cast<double>(dx),
                                               static_cast<double>(dy)})}},
                           2, 1);
  const OpticalFlow flow;
  const FlowField field = flow.compute(a, b);
  const geom::Vec2 motion = median_flow_in(field, start);
  EXPECT_NEAR(motion.x, dx, 1.6);
  EXPECT_NEAR(motion.y, dy, 1.6);
}

INSTANTIATE_TEST_SUITE_P(
    Shifts, FlowTranslation,
    ::testing::Values(std::pair{3, 0}, std::pair{-3, 0}, std::pair{0, 3},
                      std::pair{0, -2}, std::pair{4, 2}, std::pair{-2, -3},
                      std::pair{6, 0}, std::pair{0, 5}));

TEST(OpticalFlow, MedianFlowEmptyBoxIsZero) {
  FlowField field;
  field.block_size = 8;
  field.cols = 2;
  field.rows = 2;
  field.flow.assign(4, {5.0, 5.0});
  field.residual.assign(4, 0.0);
  const geom::Vec2 motion = median_flow_in(field, {100, 100, 4, 4});
  EXPECT_DOUBLE_EQ(motion.x, 0.0);
}

TEST(NewRegions, FindsUnexplainedMovingObject) {
  const Renderer r = small_renderer();
  const geom::BBox moving{60, 40, 24, 16};
  const Image a = r.render({{5, moving}}, 1, 1);
  const Image b = r.render({{5, moving.shifted({5, 0})}}, 2, 1);
  const OpticalFlow flow;
  const FlowField field = flow.compute(a, b);

  // No predicted boxes -> the mover must surface as a new region.
  const auto regions = extract_new_regions(field, {}, 1.0);
  ASSERT_FALSE(regions.empty());
  bool covers = false;
  for (const geom::BBox& region : regions)
    if (geom::coverage(moving, region) > 0.5) covers = true;
  EXPECT_TRUE(covers);
}

TEST(NewRegions, ExplainedObjectSuppressed) {
  const Renderer r = small_renderer();
  const geom::BBox moving{60, 40, 24, 16};
  const Image a = r.render({{5, moving}}, 1, 1);
  const Image b = r.render({{5, moving.shifted({5, 0})}}, 2, 1);
  const OpticalFlow flow;
  const FlowField field = flow.compute(a, b);

  const auto regions =
      extract_new_regions(field, {moving.expanded(8.0)}, 1.0);
  for (const geom::BBox& region : regions)
    EXPECT_LT(geom::coverage(moving, region), 0.5);
}

TEST(NewRegions, ScaleMapsToLogicalPixels) {
  FlowField field;
  field.block_size = 8;
  field.cols = 4;
  field.rows = 4;
  field.flow.assign(16, {0.0, 0.0});
  field.residual.assign(16, 0.0);
  // One moving block at (2,2).
  field.flow[2 * 4 + 2] = {4.0, 0.0};
  NewRegionConfig cfg;
  cfg.min_area = 1.0;
  cfg.merge_margin = 0.0;
  const auto regions = extract_new_regions(field, {}, 4.0, cfg);
  ASSERT_EQ(regions.size(), 1u);
  // Block (2,2) covers flow pixels [16,24)x[16,24) -> logical [64,96).
  EXPECT_DOUBLE_EQ(regions[0].x, 64.0);
  EXPECT_DOUBLE_EQ(regions[0].w, 32.0);
}

TEST(SliceRegions, QuantizedAndClamped) {
  const geom::SizeClassSet sizes;
  const std::vector<std::pair<long, geom::BBox>> predicted = {
      {7, {50, 50, 30, 30}},    // -> class 0 (64)
      {8, {1200, 600, 90, 90}}, // near border -> clamped
  };
  const auto slices = slice_regions(predicted, sizes, 1280, 704);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].track_id, 7);
  EXPECT_EQ(slices[0].size_class, 0);
  EXPECT_DOUBLE_EQ(slices[0].roi.w, 64.0);
  EXPECT_LE(slices[1].roi.x2(), 1280.0);
  EXPECT_LE(slices[1].roi.y2(), 704.0);
}

TEST(SliceRegions, EmptyInput) {
  const geom::SizeClassSet sizes;
  EXPECT_TRUE(slice_regions({}, sizes, 100, 100).empty());
}

TEST(Image, DownsampleIntoMatchesDownsampled) {
  util::Rng rng(11);
  for (const auto [w, h] : {std::pair{4, 4}, std::pair{7, 5}, std::pair{1, 9},
                            std::pair{33, 17}, std::pair{160, 96}}) {
    const Image img = random_image(w, h, rng);
    const Image gold = img.downsampled();
    Image out;
    img.downsample_into(out);
    ASSERT_EQ(out.width(), gold.width());
    ASSERT_EQ(out.height(), gold.height());
    EXPECT_DOUBLE_EQ(mean_abs_diff(out, gold), 0.0);
    // Reuse path: a pre-sized (stale) buffer must be fully overwritten.
    Image reused(gold.width(), gold.height(), 255);
    img.downsample_into(reused);
    EXPECT_DOUBLE_EQ(mean_abs_diff(reused, gold), 0.0);
  }
}

TEST(PaddedImage, ReplicatesClampedReads) {
  util::Rng rng(12);
  const Image img = random_image(13, 7, rng);
  PaddedImage padded;
  padded.assign(img, 5);
  for (int y = -5; y < 12; ++y)
    for (int x = -5; x < 18; ++x)
      ASSERT_EQ(padded.at(x, y), img.at_clamped(x, y))
          << "(" << x << "," << y << ")";
}

TEST(PaddedImage, ReassignReusesStorage) {
  util::Rng rng(13);
  const Image a = random_image(16, 8, rng);
  const Image b = random_image(16, 8, rng);
  PaddedImage padded;
  padded.assign(a, 3);
  padded.assign(b, 3);  // same geometry: no reallocation, fresh contents
  for (int y = -3; y < 11; ++y)
    for (int x = -3; x < 19; ++x)
      ASSERT_EQ(padded.at(x, y), b.at_clamped(x, y));
}

TEST(PaddedSad, MatchesReferenceSad) {
  util::Rng rng(14);
  const Image a = random_image(24, 18, rng);
  const Image b = random_image(24, 18, rng);
  const int pad = 16;
  PaddedImage pa, pb;
  pa.assign(a, pad);
  pb.assign(b, pad);
  for (int trial = 0; trial < 500; ++trial) {
    const int size = rng.uniform_int(1, 8);
    // Block origins anywhere in-frame; displaced origin may run `size + pad`
    // deep into the border, exactly like the clamped reference.
    const int ax = rng.uniform_int(0, 23);
    const int ay = rng.uniform_int(0, 17);
    const int bx = rng.uniform_int(-pad + 1, 24 + pad - size - 1);
    const int by = rng.uniform_int(-pad + 1, 18 + pad - size - 1);
    const std::uint32_t fast = padded_block_sad(pa, ax, ay, pb, bx, by, size);
    const double gold = reference_block_sad(a, ax, ay, b, bx, by, size);
    ASSERT_EQ(static_cast<double>(fast), gold)
        << "size=" << size << " a=(" << ax << "," << ay << ") b=(" << bx
        << "," << by << ")";
  }
}

TEST(OpticalFlowGolden, BitIdenticalOnRenderedPairs) {
  const Renderer r = small_renderer();
  const OpticalFlow flow;
  for (int trial = 0; trial < 6; ++trial) {
    const geom::BBox start{20.0 + 15.0 * trial, 30.0 + 5.0 * trial, 26, 18};
    const geom::Vec2 shift{static_cast<double>(trial - 3),
                           static_cast<double>((trial % 3) - 1)};
    const Image a = r.render({{static_cast<std::uint64_t>(trial + 1), start}},
                             trial, 9);
    const Image b = r.render(
        {{static_cast<std::uint64_t>(trial + 1), start.shifted(shift)}},
        trial + 1, 9);
    expect_fields_bit_identical(flow.compute(a, b),
                                reference_flow(flow.config(), a, b));
  }
}

TEST(OpticalFlowGolden, BitIdenticalOnOddSizesAndConfigs) {
  util::Rng rng(15);
  const std::vector<std::pair<int, int>> sizes = {
      {7, 5}, {8, 8}, {9, 16}, {17, 9}, {37, 23}, {64, 40}, {31, 64}};
  for (const auto [w, h] : sizes) {
    for (const int levels : {1, 2, 4}) {
      for (const int radius : {1, 3}) {
        OpticalFlow::Config cfg;
        cfg.pyramid_levels = levels;
        cfg.search_radius = radius;
        const OpticalFlow flow(cfg);
        const Image a = random_image(w, h, rng);
        const Image b = random_image(w, h, rng);
        expect_fields_bit_identical(flow.compute(a, b),
                                    reference_flow(cfg, a, b));
      }
    }
  }
}

TEST(OpticalFlowGolden, IncrementalScratchMatchesOneShotAcrossSequence) {
  const Renderer r = small_renderer();
  const OpticalFlow flow;
  const geom::BBox start{30, 25, 24, 16};

  FlowScratch scratch;
  EXPECT_FALSE(scratch.ready());
  Image prev = r.render({{4, start}}, 0, 3);
  scratch.cur_frame() = prev;
  flow.rebase(scratch);
  EXPECT_TRUE(scratch.ready());

  FlowField incremental;
  for (int f = 1; f <= 6; ++f) {
    const Image cur =
        r.render({{4, start.shifted({1.5 * f, -0.5 * f})}}, f, 3);
    scratch.cur_frame() = cur;
    flow.compute(scratch, incremental);
    scratch.advance();
    expect_fields_bit_identical(incremental,
                                reference_flow(flow.config(), prev, cur));
    prev = cur;
  }
}

TEST(OpticalFlowGolden, TiledComputeMatchesUntiled) {
  util::ThreadPool pool(4);
  const Renderer r = small_renderer();
  const OpticalFlow flow;
  const Image a = r.render({{8, {40, 30, 30, 20}}}, 0, 5);
  const Image b = r.render({{8, {44, 32, 30, 20}}}, 1, 5);

  FlowScratch scratch;
  scratch.cur_frame() = a;
  flow.rebase(scratch);
  scratch.cur_frame() = b;
  FlowField tiled;
  flow.compute(scratch, tiled, &pool);
  expect_fields_bit_identical(tiled, reference_flow(flow.config(), a, b));
}

}  // namespace
}  // namespace mvs::vision

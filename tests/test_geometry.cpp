#include <gtest/gtest.h>

#include "geometry/bbox.hpp"
#include "geometry/grid.hpp"
#include "geometry/size_class.hpp"
#include "util/rng.hpp"

namespace mvs::geom {
namespace {

TEST(BBox, Constructors) {
  const BBox a = BBox::from_corners(10, 20, 30, 60);
  EXPECT_DOUBLE_EQ(a.x, 10);
  EXPECT_DOUBLE_EQ(a.w, 20);
  EXPECT_DOUBLE_EQ(a.h, 40);
  const BBox b = BBox::from_corners(30, 60, 10, 20);  // reversed corners
  EXPECT_DOUBLE_EQ(b.x, 10);
  EXPECT_DOUBLE_EQ(b.area(), a.area());
  const BBox c = BBox::from_center({20, 40}, 20, 40);
  EXPECT_DOUBLE_EQ(c.x, a.x);
  EXPECT_DOUBLE_EQ(c.y, a.y);
}

TEST(BBox, CenterAndContains) {
  const BBox b{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(b.center().x, 5);
  EXPECT_TRUE(b.contains({0, 0}));
  EXPECT_TRUE(b.contains({10, 10}));
  EXPECT_FALSE(b.contains({10.01, 5}));
}

TEST(BBox, EmptyBox) {
  const BBox e{5, 5, 0, 10};
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.area(), 0.0);
  EXPECT_DOUBLE_EQ(iou(e, BBox{0, 0, 100, 100}), 0.0);
}

TEST(BBox, IouIdentical) {
  const BBox b{3, 4, 10, 20};
  EXPECT_DOUBLE_EQ(iou(b, b), 1.0);
}

TEST(BBox, IouDisjoint) {
  EXPECT_DOUBLE_EQ(iou({0, 0, 10, 10}, {20, 20, 10, 10}), 0.0);
}

TEST(BBox, IouHalfOverlap) {
  // Two 10x10 boxes sharing a 5x10 strip: inter 50, union 150.
  EXPECT_NEAR(iou({0, 0, 10, 10}, {5, 0, 10, 10}), 50.0 / 150.0, 1e-12);
}

TEST(BBox, IouTouchingEdgesIsZero) {
  EXPECT_DOUBLE_EQ(iou({0, 0, 10, 10}, {10, 0, 10, 10}), 0.0);
}

TEST(BBox, CoverageContained) {
  const BBox inner{2, 2, 4, 4};
  const BBox outer{0, 0, 100, 100};
  EXPECT_DOUBLE_EQ(coverage(inner, outer), 1.0);
  EXPECT_NEAR(coverage(outer, inner), 16.0 / 10000.0, 1e-12);
}

TEST(BBox, ClampedInside) {
  const BBox b{-10, -10, 30, 30};
  const BBox c = b.clamped(100, 100);
  EXPECT_DOUBLE_EQ(c.x, 0);
  EXPECT_DOUBLE_EQ(c.y, 0);
  EXPECT_DOUBLE_EQ(c.w, 20);
}

TEST(BBox, ClampedFullyOutsideBecomesEmpty) {
  const BBox b{-50, -50, 20, 20};
  EXPECT_TRUE(b.clamped(100, 100).empty());
}

TEST(BBox, ExpandAndShift) {
  const BBox b{10, 10, 10, 10};
  const BBox e = b.expanded(5);
  EXPECT_DOUBLE_EQ(e.x, 5);
  EXPECT_DOUBLE_EQ(e.w, 20);
  const BBox s = b.shifted({3, -2});
  EXPECT_DOUBLE_EQ(s.x, 13);
  EXPECT_DOUBLE_EQ(s.y, 8);
  EXPECT_DOUBLE_EQ(s.area(), b.area());
}

TEST(BBox, ScaledKeepsCenter) {
  const BBox b{10, 10, 10, 20};
  const BBox s = b.scaled(2.0);
  EXPECT_DOUBLE_EQ(s.center().x, b.center().x);
  EXPECT_DOUBLE_EQ(s.center().y, b.center().y);
  EXPECT_DOUBLE_EQ(s.area(), 4 * b.area());
}

/// Property sweep: IoU is symmetric, bounded and 1 only for identical boxes.
class IouProperty : public ::testing::TestWithParam<int> {};

TEST_P(IouProperty, SymmetricAndBounded) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    const BBox a{rng.uniform(0, 100), rng.uniform(0, 100),
                 rng.uniform(1, 50), rng.uniform(1, 50)};
    const BBox b{rng.uniform(0, 100), rng.uniform(0, 100),
                 rng.uniform(1, 50), rng.uniform(1, 50)};
    const double ab = iou(a, b);
    EXPECT_DOUBLE_EQ(ab, iou(b, a));
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    // Intersection area is never larger than either box.
    EXPECT_LE(intersect(a, b).area(), a.area() + 1e-9);
    EXPECT_LE(intersect(a, b).area(), b.area() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IouProperty, ::testing::Range(1, 9));

TEST(SizeClassSet, DefaultPaperSizes) {
  const SizeClassSet s;
  ASSERT_EQ(s.count(), 4u);
  EXPECT_EQ(s.size_of(0), 64);
  EXPECT_EQ(s.size_of(3), 512);
}

TEST(SizeClassSet, QuantizeSmall) {
  const SizeClassSet s;
  EXPECT_EQ(s.quantize(BBox{0, 0, 20, 20}, 8.0), 0);   // 36 <= 64
  EXPECT_EQ(s.quantize(BBox{0, 0, 60, 40}, 8.0), 1);   // 76 -> 128
  EXPECT_EQ(s.quantize(BBox{0, 0, 200, 100}, 8.0), 2); // 216 -> 256
}

TEST(SizeClassSet, OversizedMapsToLargest) {
  const SizeClassSet s;
  EXPECT_EQ(s.quantize(BBox{0, 0, 900, 900}), 3);
}

TEST(SizeClassSet, ExpandToClassKeepsCenter) {
  const SizeClassSet s;
  const BBox b{100, 100, 20, 30};
  const BBox e = s.expand_to_class(b, 1);
  EXPECT_DOUBLE_EQ(e.center().x, b.center().x);
  EXPECT_GE(e.w, 128.0);
  EXPECT_GE(e.h, 128.0);
}

TEST(SizeClassSet, CustomSizesSorted) {
  const SizeClassSet s({256, 64});
  EXPECT_EQ(s.size_of(0), 64);
  EXPECT_EQ(s.size_of(1), 256);
}

TEST(Grid, Dimensions) {
  const Grid g(1280, 704, 64);
  EXPECT_EQ(g.cols(), 20);
  EXPECT_EQ(g.rows(), 11);
  EXPECT_EQ(g.cell_count(), 220u);
}

TEST(Grid, TruncatedLastCells) {
  const Grid g(100, 100, 64);
  EXPECT_EQ(g.cols(), 2);
  const BBox last = g.cell_box({1, 1});
  EXPECT_DOUBLE_EQ(last.w, 36.0);
}

TEST(Grid, CellAtClampsOutOfRange) {
  const Grid g(100, 100, 10);
  const CellIndex c = g.cell_at({-5, 500});
  EXPECT_EQ(c.col, 0);
  EXPECT_EQ(c.row, 9);
}

TEST(Grid, FlatIndexRowMajor) {
  const Grid g(100, 100, 10);
  EXPECT_EQ(g.flat({0, 0}), 0u);
  EXPECT_EQ(g.flat({3, 2}), 23u);
}

TEST(Grid, CellsOverlappingBox) {
  const Grid g(100, 100, 10);
  const auto cells = g.cells_overlapping(BBox{5, 5, 20, 10});
  // Spans columns 0..2 and rows 0..1 -> 6 cells.
  EXPECT_EQ(cells.size(), 6u);
}

TEST(Grid, CellsOverlappingBoundaryExclusive) {
  const Grid g(100, 100, 10);
  // Box ending exactly at x=20 must not claim column 2.
  const auto cells = g.cells_overlapping(BBox{10, 10, 10, 10});
  EXPECT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].col, 1);
}

TEST(Grid, CellsOverlappingOutsideIsEmpty) {
  const Grid g(100, 100, 10);
  EXPECT_TRUE(g.cells_overlapping(BBox{200, 200, 10, 10}).empty());
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{3, 4};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ((a + Vec2{1, 1}).x, 4.0);
  EXPECT_DOUBLE_EQ((a - Vec2{1, 1}).y, 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).norm(), 10.0);
  EXPECT_DOUBLE_EQ(a.dot({1, 0}), 3.0);
}

}  // namespace
}  // namespace mvs::geom

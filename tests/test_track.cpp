#include <gtest/gtest.h>

#include "track/flow_tracker.hpp"
#include "track/kalman.hpp"
#include "track/sort_tracker.hpp"
#include "util/rng.hpp"

namespace mvs::track {
namespace {

detect::Detection det_at(geom::BBox box, std::uint64_t truth = 1) {
  detect::Detection d;
  d.box = box;
  d.score = 0.9;
  d.truth_id = truth;
  return d;
}

TEST(Kalman, InitialStateMatchesBox) {
  const geom::BBox box{100, 50, 40, 20};
  KalmanBoxFilter kf(box);
  const geom::BBox state = kf.state_box();
  EXPECT_NEAR(state.center().x, box.center().x, 1e-6);
  EXPECT_NEAR(state.area(), box.area(), 1e-3);
}

TEST(Kalman, LearnsConstantVelocity) {
  KalmanBoxFilter kf(geom::BBox{0, 0, 20, 20});
  // Feed measurements moving +5 px/frame in x.
  for (int t = 1; t <= 20; ++t) {
    kf.predict();
    kf.update(geom::BBox{5.0 * t, 0, 20, 20});
  }
  // After convergence, prediction leads the last measurement by ~5 px.
  const geom::BBox pred = kf.predict();
  EXPECT_NEAR(pred.center().x, 5.0 * 21 + 10.0, 2.0);
  EXPECT_NEAR(kf.velocity().x, 5.0, 1.0);
  EXPECT_NEAR(kf.velocity().y, 0.0, 0.5);
}

TEST(Kalman, UpdatePullsTowardMeasurement) {
  KalmanBoxFilter kf(geom::BBox{0, 0, 20, 20});
  kf.predict();
  kf.update(geom::BBox{40, 40, 20, 20});
  const geom::BBox state = kf.state_box();
  EXPECT_GT(state.center().x, 10.0);  // moved toward measurement
}

TEST(Kalman, DegenerateBoxSurvives) {
  KalmanBoxFilter kf(geom::BBox{0, 0, 0, 0});
  kf.predict();
  kf.update(geom::BBox{1, 1, 0.1, 0.1});
  EXPECT_GE(kf.state_box().area(), 0.0);
}

vision::FlowField uniform_flow(geom::Vec2 motion, int cols = 10,
                               int rows = 10) {
  vision::FlowField field;
  field.block_size = 8;
  field.cols = cols;
  field.rows = rows;
  field.flow.assign(static_cast<std::size_t>(cols * rows), motion);
  field.residual.assign(field.flow.size(), 0.0);
  return field;
}

FlowTracker make_tracker() {
  return FlowTracker(FlowTracker::Config{}, geom::SizeClassSet{});
}

TEST(FlowTracker, ResetCreatesTracks) {
  FlowTracker tracker = make_tracker();
  tracker.reset_from_detections({det_at({10, 10, 20, 20}, 1),
                                 det_at({50, 50, 30, 30}, 2)});
  ASSERT_EQ(tracker.tracks().size(), 2u);
  EXPECT_EQ(tracker.tracks()[0].last_truth_id, 1u);
  EXPECT_NE(tracker.tracks()[0].id, tracker.tracks()[1].id);
}

TEST(FlowTracker, PredictShiftsByFlow) {
  FlowTracker tracker = make_tracker();
  tracker.reset_from_detections({det_at({16, 16, 16, 16})});
  tracker.predict(uniform_flow({2.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(tracker.tracks()[0].box.x, 18.0);
  EXPECT_DOUBLE_EQ(tracker.tracks()[0].box.y, 17.0);
}

TEST(FlowTracker, PredictScalesFlow) {
  FlowTracker tracker = make_tracker();
  tracker.reset_from_detections({det_at({32, 32, 32, 32})});
  // Flow computed at 1/4 resolution: motion 2 px there = 8 px logical.
  tracker.predict(uniform_flow({2.0, 0.0}), 4.0);
  EXPECT_DOUBLE_EQ(tracker.tracks()[0].box.x, 40.0);
}

TEST(FlowTracker, UpdateMatchesAndRefreshes) {
  FlowTracker tracker = make_tracker();
  tracker.reset_from_detections({det_at({10, 10, 20, 20}, 1)});
  const auto result = tracker.update({det_at({12, 11, 20, 20}, 1)});
  EXPECT_EQ(result.matched_track_ids.size(), 1u);
  EXPECT_TRUE(result.unmatched_detections.empty());
  EXPECT_DOUBLE_EQ(tracker.tracks()[0].box.x, 12.0);
  EXPECT_EQ(tracker.tracks()[0].missed, 0);
}

TEST(FlowTracker, UnmatchedDetectionReportedNotAdopted) {
  FlowTracker tracker = make_tracker();
  tracker.reset_from_detections({det_at({10, 10, 20, 20}, 1)});
  const auto result = tracker.update(
      {det_at({12, 11, 20, 20}, 1), det_at({300, 300, 20, 20}, 2)});
  ASSERT_EQ(result.unmatched_detections.size(), 1u);
  EXPECT_EQ(result.unmatched_detections[0], 1u);
  EXPECT_EQ(tracker.tracks().size(), 1u);  // scheduling decides adoption
}

TEST(FlowTracker, MissedTracksDropAfterLimit) {
  FlowTracker::Config cfg;
  cfg.max_missed = 2;
  FlowTracker tracker(cfg, geom::SizeClassSet{});
  tracker.reset_from_detections({det_at({10, 10, 20, 20}, 1)});
  tracker.update({});
  tracker.update({});
  EXPECT_EQ(tracker.tracks().size(), 1u);
  const auto result = tracker.update({});
  EXPECT_EQ(tracker.tracks().size(), 0u);
  ASSERT_EQ(result.removed_track_ids.size(), 1u);
}

TEST(FlowTracker, MissCounterResetsOnMatch) {
  FlowTracker::Config cfg;
  cfg.max_missed = 2;
  FlowTracker tracker(cfg, geom::SizeClassSet{});
  tracker.reset_from_detections({det_at({10, 10, 20, 20}, 1)});
  tracker.update({});
  tracker.update({det_at({10, 10, 20, 20}, 1)});
  tracker.update({});
  tracker.update({});
  EXPECT_EQ(tracker.tracks().size(), 1u);  // 2 misses since match, still alive
}

TEST(FlowTracker, AddRemoveTrack) {
  FlowTracker tracker = make_tracker();
  const long id = tracker.add_track(det_at({5, 5, 64, 64}, 9));
  EXPECT_TRUE(tracker.has_track(id));
  EXPECT_EQ(tracker.find(id)->size_class, 1);  // 64+margin -> class 1
  tracker.remove_track(id);
  EXPECT_FALSE(tracker.has_track(id));
}

TEST(FlowTracker, SizeClassFixedWithinHorizon) {
  FlowTracker tracker = make_tracker();
  tracker.reset_from_detections({det_at({10, 10, 20, 20}, 1)});
  const geom::SizeClassId before = tracker.tracks()[0].size_class;
  // Object grows; class must stay (downsizing handled by the detector).
  tracker.update({det_at({10, 10, 200, 200}, 1)});
  EXPECT_EQ(tracker.tracks()[0].size_class, before);
}

TEST(FlowTracker, PredictedBoxesExported) {
  FlowTracker tracker = make_tracker();
  tracker.reset_from_detections({det_at({10, 10, 20, 20}, 1)});
  const auto boxes = tracker.predicted_boxes();
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0].first, tracker.tracks()[0].id);
}

TEST(SortTracker, ConfirmsAfterMinHits) {
  SortTracker tracker;
  EXPECT_TRUE(tracker.step({det_at({10, 10, 20, 20}, 1)}).empty());
  const auto confirmed = tracker.step({det_at({12, 10, 20, 20}, 1)});
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0].hits, 2);
}

TEST(SortTracker, TracksThroughOcclusionGap) {
  SortTracker tracker;
  tracker.step({det_at({10, 10, 20, 20}, 1)});
  tracker.step({det_at({15, 10, 20, 20}, 1)});
  tracker.step({});  // one missed frame
  const auto confirmed = tracker.step({det_at({25, 10, 20, 20}, 1)});
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(tracker.track_count(), 1u);  // same identity, no duplicate birth
}

TEST(SortTracker, DropsLostTracks) {
  SortTracker::Config cfg;
  cfg.max_missed = 1;
  SortTracker tracker(cfg);
  tracker.step({det_at({10, 10, 20, 20}, 1)});
  tracker.step({});
  tracker.step({});
  EXPECT_EQ(tracker.track_count(), 0u);
}

TEST(SortTracker, SeparateIdentities) {
  SortTracker tracker;
  for (int t = 0; t < 4; ++t) {
    const double off = 3.0 * t;
    tracker.step({det_at({10 + off, 10, 20, 20}, 1),
                  det_at({200 - off, 200, 20, 20}, 2)});
  }
  EXPECT_EQ(tracker.track_count(), 2u);
}

}  // namespace
}  // namespace mvs::track

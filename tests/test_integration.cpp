// Cross-module integration tests: the full pipeline under stress conditions
// (occlusion injection, horizon sweeps, policy invariants on every
// scenario), plus the Sec. V extensions driven from simulator data.

#include <gtest/gtest.h>

#include "core/extensions.hpp"
#include "core/offload.hpp"
#include "runtime/config.hpp"
#include "runtime/pipeline.hpp"
#include "sim/dataset.hpp"
#include "sim/scenario.hpp"

namespace mvs {
namespace {

runtime::PipelineConfig quick(runtime::Policy policy, int horizon = 10) {
  runtime::PipelineConfig cfg;
  cfg.policy = policy;
  cfg.horizon_frames = horizon;
  cfg.training_frames = 120;
  cfg.seed = 3;
  return cfg;
}

class ScenarioPolicyMatrix
    : public ::testing::TestWithParam<std::tuple<const char*, runtime::Policy>> {
};

TEST_P(ScenarioPolicyMatrix, RunsWithSaneInvariants) {
  const auto& [scenario, policy] = GetParam();
  runtime::Pipeline pipeline(scenario, quick(policy));
  const auto result = pipeline.run(30);
  ASSERT_EQ(result.frames.size(), 30u);
  EXPECT_GT(result.object_recall, 0.5);
  for (const auto& frame : result.frames) {
    EXPECT_GE(frame.slowest_infer_ms, 0.0);
    for (double v : frame.camera_infer_ms) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 300.0);  // never exceeds the slowest full frame
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScenarioPolicyMatrix,
    ::testing::Combine(::testing::Values("S1", "S3"),
                       ::testing::Values(runtime::Policy::kFull,
                                         runtime::Policy::kBalbInd,
                                         runtime::Policy::kBalb,
                                         runtime::Policy::kStaticPartition)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      name += "_";
      name += runtime::to_string(std::get<1>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Integration, HorizonSweepTradeoffDirection) {
  // Longer horizons must not get slower; the recall at T=2 must be at least
  // that of T=40 (the Fig. 14 monotone ends).
  double latency_t2 = 0.0, latency_t40 = 0.0;
  double recall_t2 = 0.0, recall_t40 = 0.0;
  {
    runtime::Pipeline p("S2", quick(runtime::Policy::kBalb, 2));
    const auto r = p.run(80);
    latency_t2 = r.mean_slowest_infer_ms();
    recall_t2 = r.object_recall;
  }
  {
    runtime::Pipeline p("S2", quick(runtime::Policy::kBalb, 40));
    const auto r = p.run(80);
    latency_t40 = r.mean_slowest_infer_ms();
    recall_t40 = r.object_recall;
  }
  EXPECT_LT(latency_t40, latency_t2);
  EXPECT_GE(recall_t2, recall_t40 - 0.02);
}

TEST(Integration, OcclusionReducesVisibleGroundTruth) {
  sim::Scenario with = sim::make_s3(5);
  with.occlusion.enabled = true;
  sim::Scenario without = sim::make_s3(5);

  sim::ScenarioPlayer player_with(std::move(with), 60.0);
  sim::ScenarioPlayer player_without(std::move(without), 60.0);
  std::size_t n_with = 0, n_without = 0;
  for (int f = 0; f < 100; ++f) {
    for (const auto& cam : player_with.next().per_camera) n_with += cam.size();
    for (const auto& cam : player_without.next().per_camera)
      n_without += cam.size();
  }
  EXPECT_LT(n_with, n_without);
  EXPECT_GT(n_with, n_without / 2);  // occlusion thins, not empties
}

TEST(Integration, RedundantAssignmentFromSimulatedCoverage) {
  // Build an MVS instance from real simulator coverage sets and verify the
  // K=2 extension covers shared objects twice.
  sim::ScenarioPlayer player(sim::make_s1(4), 80.0);
  const sim::MultiFrame frame = player.next();

  core::MvsProblem problem;
  for (const auto& cam : player.scenario().cameras)
    problem.cameras.push_back(cam.device);
  std::map<std::uint64_t, core::ObjectSpec> by_id;
  const geom::SizeClassSet sizes;
  for (std::size_t c = 0; c < frame.per_camera.size(); ++c) {
    for (const auto& gt : frame.per_camera[c]) {
      core::ObjectSpec& spec = by_id[gt.id];
      if (spec.size_class.empty())
        spec.size_class.assign(problem.cameras.size(), 0);
      spec.key = gt.id;
      spec.coverage.push_back(static_cast<int>(c));
      spec.size_class[c] = sizes.quantize(gt.box);
    }
  }
  for (auto& [id, spec] : by_id) problem.objects.push_back(spec);
  if (problem.objects.empty()) GTEST_SKIP() << "no traffic this frame";

  const core::Assignment a = core::redundant_balb(problem, {2});
  EXPECT_TRUE(core::is_feasible(problem, a));
  for (std::size_t j = 0; j < problem.object_count(); ++j) {
    int trackers = 0;
    for (std::size_t i = 0; i < problem.camera_count(); ++i)
      trackers += a.x[i][j];
    EXPECT_EQ(trackers,
              std::min<int>(2, static_cast<int>(
                                   problem.objects[j].coverage.size())));
  }
}

TEST(Integration, ViewSelectionFromSimulatedFrames) {
  sim::ScenarioPlayer player(sim::make_s1(4), 80.0);
  const sim::MultiFrame frame = player.next();

  core::ViewSelectionProblem problem;
  for (const auto& cam : frame.per_camera) {
    std::vector<std::uint64_t> ids;
    for (const auto& gt : cam) ids.push_back(gt.id);
    problem.objects_per_camera.push_back(std::move(ids));
    problem.upload_cost.push_back(10.0);  // equal-cost uplinks
  }
  const auto selection = core::select_views_greedy(problem);
  EXPECT_EQ(selection.covered, selection.total_objects);
  // Overlapping views: strictly fewer uploads than cameras when any object
  // is shared.
  std::map<std::uint64_t, int> seen;
  for (const auto& cam : frame.per_camera)
    for (const auto& gt : cam) ++seen[gt.id];
  const bool any_shared =
      std::any_of(seen.begin(), seen.end(),
                  [](const auto& kv) { return kv.second >= 2; });
  if (any_shared)
    EXPECT_LT(selection.cameras.size(), frame.per_camera.size());
}

TEST(Integration, ConfigDrivenRunMatchesDirectRun) {
  const std::string text = R"({
    "scenario": "S2", "frames": 20,
    "pipeline": {"policy": "balb-ind", "horizon_frames": 10,
                 "training_frames": 100, "seed": 12}
  })";
  const auto config = runtime::parse_run_config(text);
  ASSERT_TRUE(config.has_value());
  runtime::Pipeline from_config(config->scenario, config->pipeline);
  const auto a = from_config.run(config->frames);

  runtime::PipelineConfig direct;
  direct.policy = runtime::Policy::kBalbInd;
  direct.horizon_frames = 10;
  direct.training_frames = 100;
  direct.seed = 12;
  runtime::Pipeline manual("S2", direct);
  const auto b = manual.run(20);

  EXPECT_DOUBLE_EQ(a.object_recall, b.object_recall);
  EXPECT_DOUBLE_EQ(a.mean_slowest_infer_ms(), b.mean_slowest_infer_ms());
}

TEST(Integration, ParallelCamerasDeterministic) {
  // The per-camera thread pool must not perturb results across runs.
  runtime::Pipeline a("S1", quick(runtime::Policy::kBalb));
  runtime::Pipeline b("S1", quick(runtime::Policy::kBalb));
  const auto ra = a.run(25);
  const auto rb = b.run(25);
  ASSERT_EQ(ra.frames.size(), rb.frames.size());
  for (std::size_t f = 0; f < ra.frames.size(); ++f) {
    ASSERT_EQ(ra.frames[f].camera_infer_ms.size(),
              rb.frames[f].camera_infer_ms.size());
    for (std::size_t c = 0; c < ra.frames[f].camera_infer_ms.size(); ++c)
      EXPECT_DOUBLE_EQ(ra.frames[f].camera_infer_ms[c],
                       rb.frames[f].camera_infer_ms[c]);
  }
  EXPECT_DOUBLE_EQ(ra.object_recall, rb.object_recall);
}

}  // namespace
}  // namespace mvs

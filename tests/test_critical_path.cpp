// mvs::obs v2 tests (DESIGN.md §14): critical-path latency attribution,
// the SLO burn-rate monitor, the deadline-miss flight recorder, and the
// shard-merged metrics exposition.
//
// The attribution conservation contract — segments sum to the end-to-end
// latency within 1e-6 ms — is asserted both on synthetic records and
// end-to-end through the paced runtime, whose decomposition is built from
// the exact addends of its virtual-clock age. Fingerprints must be
// bit-identical across thread counts (attribution inputs are simulated
// quantities only).

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "fleet/burn.hpp"
#include "obs/obs.hpp"
#include "rt/runner.hpp"
#include "runtime/config.hpp"
#include "util/json.hpp"

namespace mvs {
namespace {

obs::FrameAttribution make_attr(std::uint64_t frame, double gpu, double queue,
                                bool miss) {
  obs::FrameAttribution fa;
  fa.id = obs::causal_id(7, frame);
  fa.segment_ms[static_cast<std::size_t>(obs::Segment::kGpu)] = gpu;
  fa.segment_ms[static_cast<std::size_t>(obs::Segment::kSchedQueue)] = queue;
  fa.total_ms = gpu + queue;
  fa.deadline_miss = miss;
  return fa;
}

class CriticalPathTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::reset(); }
  void TearDown() override {
    obs::set_attribution_enabled(false);
    obs::set_enabled(false);
    obs::reset();
  }
};

TEST_F(CriticalPathTest, RecordAccumulatesDominantAndConservation) {
  obs::CriticalPath& cp = obs::critical_path();
  cp.record(make_attr(0, 10.0, 2.0, false));   // gpu dominant
  cp.record(make_attr(1, 1.0, 30.0, true));    // sched_queue dominant
  cp.record(make_attr(2, 5.0, 5.0, false));    // tie -> first in enum order
  EXPECT_EQ(cp.frames(), 3);
  EXPECT_EQ(cp.misses(), 1);
  EXPECT_EQ(cp.dominant_count(obs::Segment::kGpu), 1);
  // The 5/5 tie resolves to the first segment in enum order with the max
  // value — sched_queue (index 2) precedes gpu (index 4).
  EXPECT_EQ(cp.dominant_count(obs::Segment::kSchedQueue), 2);
  EXPECT_EQ(cp.max_conservation_error_ms(), 0.0);

  // A deliberately broken attribution folds into the conservation bound.
  obs::FrameAttribution bad = make_attr(3, 10.0, 0.0, false);
  bad.total_ms = 11.5;
  cp.record(bad);
  EXPECT_NEAR(cp.max_conservation_error_ms(), 1.5, 1e-12);

  // Segment histograms carry every frame; causal ids round-trip.
  EXPECT_EQ(cp.segment_histogram(obs::Segment::kGpu).count(), 4);
  EXPECT_EQ(cp.total_histogram().count(), 4);
  EXPECT_EQ(obs::causal_stream(make_attr(9, 1, 1, false).id), 7u);
  EXPECT_EQ(obs::causal_frame(make_attr(9, 1, 1, false).id), 9u);
}

TEST_F(CriticalPathTest, AttributionJsonTableShape) {
  obs::critical_path().record(make_attr(0, 40.0, 2.0, true));
  const util::Json doc = obs::critical_path().attribution_json();
  EXPECT_EQ(doc.number_or("frames", 0.0), 1.0);
  EXPECT_EQ(doc.number_or("deadline_misses", 0.0), 1.0);
  EXPECT_EQ(doc.string_or("dominant", ""), "gpu");
  const util::Json* segs = doc.find("segments");
  ASSERT_NE(segs, nullptr);
  ASSERT_TRUE(segs->is_object());
  EXPECT_EQ(segs->as_object().size(),
            static_cast<std::size_t>(obs::kSegmentCount));
  const util::Json* gpu = segs->find("gpu");
  ASSERT_NE(gpu, nullptr);
  EXPECT_EQ(gpu->number_or("count", 0.0), 1.0);
  EXPECT_EQ(gpu->number_or("dominant_frames", 0.0), 1.0);
  EXPECT_EQ(gpu->number_or("dominant_frac", 0.0), 1.0);
  ASSERT_NE(doc.find("total"), nullptr);
}

TEST_F(CriticalPathTest, ExportJsonCarriesAttributionOnlyWhenEnabled) {
  obs::critical_path().record(make_attr(0, 4.0, 1.0, false));
  std::string err;
  const std::optional<util::Json> off =
      util::Json::parse(obs::export_json(), &err);
  ASSERT_TRUE(off.has_value()) << err;
  EXPECT_EQ(off->find("attribution"), nullptr);

  obs::set_attribution_enabled(true);
  const std::optional<util::Json> on =
      util::Json::parse(obs::export_json(), &err);
  ASSERT_TRUE(on.has_value()) << err;
  const util::Json* attr = on->find("attribution");
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(attr->number_or("frames", 0.0), 1.0);
}

// ------------------------------------------------- paced-runtime producer --

runtime::PipelineConfig fast_pipeline(int threads) {
  runtime::PipelineConfig cfg;
  cfg.policy = runtime::Policy::kBalb;
  cfg.horizon_frames = 10;
  cfg.training_frames = 120;
  cfg.seed = 21;
  cfg.threads = threads;
  return cfg;
}

TEST_F(CriticalPathTest, PacedRunnerAttributionSumsToEndToEndLatency) {
  obs::set_attribution_enabled(true);
  runtime::RtConfig rtc;
  rtc.paced = true;
  rtc.deadline_ms = 60.0;
  rtc.late_policy = runtime::LatePolicy::kDrop;
  rtc.arrival_jitter_ms = 4.0;
  rt::RtRunner runner("S2", fast_pipeline(2), rtc);
  const rt::RtResult r = runner.run(60);

  const obs::CriticalPath& cp = obs::critical_path();
  // Processed and dropped frames each record one attribution; superseded
  // frames resolve as skips and record none (the drop policy has none).
  EXPECT_EQ(cp.frames(), r.counters.processed + r.counters.dropped);
  EXPECT_EQ(cp.misses(), r.counters.deadline_miss);
  EXPECT_GT(cp.frames(), 0);
  // The acceptance bound: segments sum to the end-to-end latency exactly
  // (the decomposition is built from the exact addends of the age).
  EXPECT_LT(cp.max_conservation_error_ms(), 1e-6);
  // Tracking/batch-wait are structurally zero on the virtual-clock path.
  EXPECT_EQ(cp.dominant_count(obs::Segment::kTracking), 0);
  EXPECT_EQ(cp.dominant_count(obs::Segment::kBatchWait), 0);
}

TEST_F(CriticalPathTest, FingerprintDeterministicAcrossThreadCounts) {
  const auto run_fp = [this](int threads) {
    obs::reset();
    obs::set_attribution_enabled(true);
    runtime::RtConfig rtc;
    rtc.paced = true;
    rtc.deadline_ms = 60.0;
    rtc.arrival_jitter_ms = 4.0;
    rt::RtRunner runner("S2", fast_pipeline(threads), rtc);
    (void)runner.run(40);
    std::string fp = obs::critical_path().fingerprint();
    obs::set_attribution_enabled(false);
    return fp;
  };
  const std::string narrow = run_fp(1);
  const std::string wide = run_fp(8);
  EXPECT_FALSE(narrow.empty());
  EXPECT_EQ(narrow, wide);
}

// ------------------------------------------------------- burn-rate monitor --

TEST(BurnMonitor, RaiseNeedsFullFastWindowAndBothBurns) {
  fleet::BurnConfig bc;
  bc.error_budget = 0.1;
  bc.fast_window = 8;
  bc.slow_window = 16;
  bc.raise_mult = 2.0;
  bc.clear_mult = 1.0;
  fleet::BurnMonitor m(bc);

  // Seven straight misses: burns are sky-high but the fast window is not
  // full yet — no alert off a partial first window.
  for (int i = 0; i < 7; ++i) EXPECT_EQ(m.push(true), 0) << i;
  EXPECT_FALSE(m.alerting());
  // The eighth fills the window: raise edge, exactly once.
  EXPECT_EQ(m.push(true), +1);
  EXPECT_TRUE(m.alerting());
  EXPECT_EQ(m.push(true), 0);  // still alerting, no duplicate edge
  EXPECT_GE(m.fast_burn(), bc.raise_mult);

  // Hysteresis: the clear threshold is lower than the raise threshold, so
  // the alert holds until the fast burn drops below clear_mult (ratio
  // < 0.1 over 8 ticks means zero misses in the window).
  int edge = 0;
  int goods = 0;
  while (edge == 0 && goods < 32) {
    edge = m.push(false);
    ++goods;
  }
  EXPECT_EQ(edge, -1);
  EXPECT_FALSE(m.alerting());
  EXPECT_EQ(goods, 8) << "clear must land exactly when the last miss "
                         "leaves the fast window";
}

TEST(BurnMonitor, ZeroBudgetDisablesAlerting) {
  fleet::BurnMonitor m;  // default config: error_budget = 0
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.push(true), 0);
  EXPECT_FALSE(m.alerting());
  EXPECT_EQ(m.fast_burn(), 0.0);
}

TEST(BurnMonitor, ReRaisesAfterClear) {
  fleet::BurnConfig bc;
  bc.error_budget = 0.25;
  bc.fast_window = 4;
  bc.slow_window = 4;
  fleet::BurnMonitor m(bc);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(m.push(true), 0);
  EXPECT_EQ(m.push(true), +1);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(m.push(false), 0);
  EXPECT_EQ(m.push(false), -1);
  // The windows keep their history across the clear, so the re-raise fires
  // as soon as both burns cross the threshold again — no full fresh window
  // required.
  int edge = 0;
  for (int i = 0; edge == 0 && i < 8; ++i) edge = m.push(true);
  EXPECT_EQ(edge, +1);
  EXPECT_TRUE(m.alerting());
}

// -------------------------------------------------------- flight recorder --

TEST_F(CriticalPathTest, RecorderRingWrapsAndDumpValidates) {
  obs::FlightRecorder& rec = obs::recorder();
  obs::FlightRecorder::Config rc;
  rc.miss_threshold = 0;  // no automatic dumps in this test
  rec.configure(rc);

  const long long total = 600;  // > kFrameCapacity: the ring must wrap
  for (long long i = 0; i < total; ++i)
    rec.note_frame(make_attr(static_cast<std::uint64_t>(i), 5.0, 1.0,
                             /*miss=*/i % 3 == 0));
  EXPECT_EQ(rec.frames_seen(), total);
  EXPECT_EQ(rec.dumps(), 0);

  const std::string doc_text = rec.request_dump("unit-test");
  EXPECT_EQ(rec.dumps(), 1);
  EXPECT_EQ(rec.last_dump(), doc_text);
  EXPECT_TRUE(rec.last_dump_path().empty());  // no directory configured

  std::string err;
  const std::optional<util::Json> doc = util::Json::parse(doc_text, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->string_or("schema", ""), "mvs-postmortem-v1");
  EXPECT_EQ(doc->string_or("reason", ""), "unit-test");
  EXPECT_EQ(doc->number_or("frames_seen", 0.0), static_cast<double>(total));
  const util::Json* frames = doc->find("frames");
  ASSERT_NE(frames, nullptr);
  ASSERT_TRUE(frames->is_array());
  EXPECT_EQ(frames->as_array().size(), obs::FlightRecorder::kFrameCapacity);
  // The ring keeps the newest kFrameCapacity frames: the oldest surviving
  // entry is frame total - capacity.
  const util::Json& oldest = frames->as_array().front();
  EXPECT_EQ(oldest.number_or("frame", -1.0),
            static_cast<double>(total -
                                static_cast<long long>(
                                    obs::FlightRecorder::kFrameCapacity)));
  EXPECT_EQ(oldest.number_or("stream", -1.0), 7.0);
  ASSERT_NE(oldest.find("segments"), nullptr);
  ASSERT_NE(doc->find("events"), nullptr);
  ASSERT_NE(doc->find("attribution"), nullptr);
  ASSERT_NE(doc->find("metrics"), nullptr);
}

TEST_F(CriticalPathTest, RecorderMissBurstAutoDumpIsRateLimited) {
  obs::FlightRecorder& rec = obs::recorder();
  obs::FlightRecorder::Config rc;
  rc.miss_window = 16;
  rc.miss_threshold = 4;
  rec.configure(rc);

  // Below threshold: 3 misses scattered in the window never trigger.
  for (int i = 0; i < 16; ++i)
    rec.note_frame(make_attr(static_cast<std::uint64_t>(i), 5.0, 1.0,
                             /*miss=*/i < 3));
  EXPECT_EQ(rec.dumps(), 0);

  // A burst crosses the threshold exactly once per ring generation.
  for (int i = 0; i < 64; ++i)
    rec.note_frame(make_attr(static_cast<std::uint64_t>(100 + i), 5.0, 1.0,
                             /*miss=*/true));
  EXPECT_EQ(rec.dumps(), 1);
  std::string err;
  const std::optional<util::Json> doc =
      util::Json::parse(rec.last_dump(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->string_or("reason", ""), "miss-burst");

  // Still inside the same ring generation: no second dump.
  for (int i = 0; i < 100; ++i)
    rec.note_frame(make_attr(static_cast<std::uint64_t>(200 + i), 5.0, 1.0,
                             /*miss=*/true));
  EXPECT_EQ(rec.dumps(), 1);
}

TEST_F(CriticalPathTest, RecorderEventTailSurvivesDump) {
  obs::FlightRecorder& rec = obs::recorder();
  obs::FlightRecorder::Config rc;
  rc.miss_threshold = 0;
  rec.configure(rc);
  rec.note_event(42, "rt_drop", -1, 123.5);
  rec.note_event(43, "session_evict", 3, 7.0);
  std::string err;
  const std::optional<util::Json> doc =
      util::Json::parse(rec.request_dump("events"), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const util::Json* events = doc->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 2u);
  EXPECT_EQ(events->as_array()[0].string_or("type", ""), "rt_drop");
  EXPECT_EQ(events->as_array()[0].number_or("tick", 0.0), 42.0);
  EXPECT_EQ(events->as_array()[1].number_or("session", -1.0), 3.0);
}

// ------------------------------------------------- shard-merged exposition --

TEST(MergedExposition, OneShardMergeBitEqualToFlatEntry) {
  // The merged rollup synthesized from "fleet.shard.0.<x>" must be
  // bit-equal to the entry a flat Fleet registers directly under
  // "fleet.<x>" for the same samples — counters, gauges and histogram
  // percentiles alike (the merge reuses percentile_from_counts on the
  // summed buckets, so this is exact, not approximate).
  obs::MetricsRegistry flat, sharded;
  const double samples[] = {0.5, 3.0, 17.2, 80.0, 1.6, 254.0, 9.9};
  for (double v : samples) {
    flat.histogram("fleet.tick_busy_ms").record(v);
    sharded.histogram("fleet.shard.0.tick_busy_ms").record(v);
  }
  flat.counter("fleet.frames").add(123);
  sharded.counter("fleet.shard.0.frames").add(123);
  flat.gauge("fleet.sessions").set(4.0);
  sharded.gauge("fleet.shard.0.sessions").set(4.0);

  std::string err;
  const std::optional<util::Json> fd =
      util::Json::parse(flat.to_json(), &err);
  const std::optional<util::Json> sd =
      util::Json::parse(sharded.to_json(), &err);
  ASSERT_TRUE(fd.has_value() && sd.has_value()) << err;

  const util::Json* fh = fd->find("histograms")->find("fleet.tick_busy_ms");
  const util::Json* sh = sd->find("histograms")->find("fleet.tick_busy_ms");
  ASSERT_NE(fh, nullptr);
  ASSERT_NE(sh, nullptr) << "merged rollup entry missing";
  EXPECT_EQ(fh->dump(), sh->dump());
  // The per-shard entry is still exposed, labeled with its shard.
  const util::Json* per_shard =
      sd->find("histograms")->find("fleet.shard.0.tick_busy_ms");
  ASSERT_NE(per_shard, nullptr);
  EXPECT_EQ(per_shard->number_or("shard", -1.0), 0.0);
  EXPECT_EQ(fh->find("shard"), nullptr);
  EXPECT_EQ(sh->find("shard"), nullptr);

  EXPECT_EQ(sd->find("counters")->number_or("fleet.frames", -1.0), 123.0);
  EXPECT_EQ(sd->find("gauges")->number_or("fleet.sessions", -1.0), 4.0);
}

TEST(MergedExposition, MultiShardMergeSumsAcrossShards) {
  obs::MetricsRegistry reg;
  reg.histogram("fleet.shard.0.tick_busy_ms").record(10.0);
  reg.histogram("fleet.shard.0.tick_busy_ms").record(20.0);
  reg.histogram("fleet.shard.1.tick_busy_ms").record(300.0);
  reg.counter("fleet.shard.0.frames").add(5);
  reg.counter("fleet.shard.1.frames").add(7);

  std::string err;
  const std::optional<util::Json> doc =
      util::Json::parse(reg.to_json(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const util::Json* merged =
      doc->find("histograms")->find("fleet.tick_busy_ms");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->number_or("count", 0.0), 3.0);
  EXPECT_EQ(merged->number_or("min", 0.0), 10.0);
  EXPECT_EQ(merged->number_or("max", 0.0), 300.0);
  EXPECT_EQ(doc->find("counters")->number_or("fleet.frames", -1.0), 12.0);
}

}  // namespace
}  // namespace mvs

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <tuple>

#include "assoc/association.hpp"
#include "fleet/fleet.hpp"
#include "obs/obs.hpp"
#include "runtime/oracles.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/trace.hpp"
#include "sim/dataset.hpp"
#include "sim/scenario.hpp"

namespace mvs::runtime {
namespace {

PipelineConfig fast_config(Policy policy, std::uint64_t seed = 5) {
  PipelineConfig cfg;
  cfg.policy = policy;
  cfg.horizon_frames = 10;
  cfg.training_frames = 120;
  cfg.seed = seed;
  return cfg;
}

TEST(Oracles, CoverageIncludesSelfAndIsSorted) {
  sim::ScenarioPlayer player(sim::make_s2(3), 60.0);
  const auto frames = player.take(120);
  assoc::CrossCameraAssociator associator({{1280, 704}, {1280, 704}});
  associator.train(frames);
  const auto coverage = make_coverage_oracle(associator);
  for (double x = 50; x < 1280; x += 300) {
    const auto cover = coverage(0, {x, 400});
    EXPECT_FALSE(cover.empty());
    EXPECT_TRUE(std::find(cover.begin(), cover.end(), 0) != cover.end());
    EXPECT_TRUE(std::is_sorted(cover.begin(), cover.end()));
  }
}

TEST(Oracles, RegionKeyDeterministic) {
  sim::ScenarioPlayer player(sim::make_s2(3), 60.0);
  const auto frames = player.take(120);
  assoc::CrossCameraAssociator associator({{1280, 704}, {1280, 704}});
  associator.train(frames);
  const auto key = make_region_key_oracle(associator);
  EXPECT_EQ(key(0, {200, 300}), key(0, {200, 300}));
  // Nearby points in the same 64-px cell share the key.
  EXPECT_EQ(key(0, {200, 300}), key(0, {205, 305}));
}

class PolicyRuns : public ::testing::TestWithParam<Policy> {};

TEST_P(PolicyRuns, ExecutesAndReportsSaneNumbers) {
  Pipeline pipeline("S2", fast_config(GetParam()));
  const PipelineResult result = pipeline.run(40);
  ASSERT_EQ(result.frames.size(), 40u);
  EXPECT_GE(result.object_recall, 0.0);
  EXPECT_LE(result.object_recall, 1.0);
  EXPECT_GT(result.mean_slowest_infer_ms(), 0.0);
  // Key-frame cadence: frames 0, 10, 20, 30 (except Full which has none).
  for (std::size_t f = 0; f < result.frames.size(); ++f) {
    if (GetParam() == Policy::kFull) break;
    EXPECT_EQ(result.frames[f].key_frame, f % 10 == 0);
  }
  // Per-camera latency vector matches the scenario camera count.
  EXPECT_EQ(result.frames[0].camera_infer_ms.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyRuns,
    ::testing::Values(Policy::kFull, Policy::kBalbInd, Policy::kBalbCen,
                      Policy::kBalb, Policy::kStaticPartition),
    [](const ::testing::TestParamInfo<Policy>& info) {
      std::string name = to_string(info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(PipelineBehaviour, FullChargesFullFrameEveryFrame) {
  Pipeline pipeline("S2", fast_config(Policy::kFull));
  const PipelineResult result = pipeline.run(10);
  for (const FrameStats& f : result.frames)
    EXPECT_DOUBLE_EQ(f.slowest_infer_ms, 280.0);  // nano full frame
}

TEST(PipelineBehaviour, BalbFasterThanFull) {
  Pipeline full("S2", fast_config(Policy::kFull));
  Pipeline balb("S2", fast_config(Policy::kBalb));
  const double full_latency = full.run(60).mean_slowest_infer_ms();
  const double balb_latency = balb.run(60).mean_slowest_infer_ms();
  EXPECT_LT(balb_latency, 0.8 * full_latency);
}

TEST(PipelineBehaviour, BalbRecallUsable) {
  Pipeline balb("S2", fast_config(Policy::kBalb));
  EXPECT_GT(balb.run(60).object_recall, 0.7);
}

TEST(PipelineBehaviour, KeyFramesChargeFullInspection) {
  Pipeline balb("S2", fast_config(Policy::kBalb));
  const PipelineResult result = balb.run(20);
  EXPECT_DOUBLE_EQ(result.frames[0].slowest_infer_ms, 280.0);
  // Regular frames must be cheaper than key frames on average.
  double regular = 0.0;
  int count = 0;
  for (const FrameStats& f : result.frames)
    if (!f.key_frame) {
      regular += f.slowest_infer_ms;
      ++count;
    }
  EXPECT_LT(regular / count, 280.0);
}

TEST(PipelineBehaviour, CentralOverheadOnlyOnKeyFrames) {
  Pipeline balb("S2", fast_config(Policy::kBalb));
  const PipelineResult result = balb.run(20);
  for (const FrameStats& f : result.frames) {
    if (!f.key_frame) EXPECT_DOUBLE_EQ(f.central_ms, 0.0);
  }
  EXPECT_GT(result.frames[0].central_ms, 0.0);
  EXPECT_GT(result.frames[0].comm_ms, 0.0);
}

TEST(PipelineBehaviour, TrackingOverheadOnRegularFrames) {
  Pipeline balb("S2", fast_config(Policy::kBalb));
  const PipelineResult result = balb.run(15);
  bool any_tracking = false;
  for (const FrameStats& f : result.frames)
    if (!f.key_frame && f.tracking_ms > 0.0) any_tracking = true;
  EXPECT_TRUE(any_tracking);
}

/// Compare the deterministic FrameStats fields (everything except measured
/// wall-clock overheads, which legitimately vary run to run).
void expect_deterministic_stats_equal(const PipelineResult& a,
                                      const PipelineResult& b) {
  EXPECT_DOUBLE_EQ(a.object_recall, b.object_recall);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t f = 0; f < a.frames.size(); ++f) {
    const FrameStats& fa = a.frames[f];
    const FrameStats& fb = b.frames[f];
    EXPECT_EQ(fa.frame, fb.frame);
    EXPECT_EQ(fa.key_frame, fb.key_frame);
    ASSERT_EQ(fa.camera_infer_ms.size(), fb.camera_infer_ms.size());
    for (std::size_t c = 0; c < fa.camera_infer_ms.size(); ++c)
      EXPECT_DOUBLE_EQ(fa.camera_infer_ms[c], fb.camera_infer_ms[c]);
    EXPECT_DOUBLE_EQ(fa.slowest_infer_ms, fb.slowest_infer_ms);
    EXPECT_DOUBLE_EQ(fa.frame_recall, fb.frame_recall);
    EXPECT_EQ(fa.gt_objects, fb.gt_objects);
    EXPECT_EQ(fa.tracked_objects, fb.tracked_objects);
    EXPECT_DOUBLE_EQ(fa.comm_ms, fb.comm_ms);
    EXPECT_EQ(fa.retries, fb.retries);
    EXPECT_EQ(fa.dropped_msgs, fb.dropped_msgs);
    EXPECT_EQ(fa.cameras_online, fb.cameras_online);
  }
}

/// Trace events sorted into a canonical order: camera steps run concurrently,
/// so the recording order across cameras is scheduling-dependent even though
/// the event SET is deterministic.
std::vector<TraceEvent> sorted_events(const TraceRecorder& trace) {
  std::vector<TraceEvent> events = trace.events();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.frame, a.camera, a.type, a.object_key,
                              a.value) < std::tie(b.frame, b.camera, b.type,
                                                  b.object_key, b.value);
            });
  return events;
}

TEST(PipelineBehaviour, DeterministicAcrossThreadCountsAndTiling) {
  // Same seed at threads=1, threads=8, and threads=8 without flow tiling:
  // FrameStats and trace streams must be identical. S2 has 2 cameras, so
  // threads=8 exercises the tiled-flow path (fleet smaller than the pool).
  PipelineConfig base = fast_config(Policy::kBalb, 21);
  base.threads = 1;
  PipelineConfig wide = base;
  wide.threads = 8;
  PipelineConfig wide_untiled = wide;
  wide_untiled.tile_flow = false;

  TraceRecorder trace_base, trace_wide, trace_untiled;
  Pipeline a("S2", base);
  a.attach_trace(&trace_base);
  Pipeline b("S2", wide);
  b.attach_trace(&trace_wide);
  Pipeline c("S2", wide_untiled);
  c.attach_trace(&trace_untiled);

  const PipelineResult ra = a.run(30);
  const PipelineResult rb = b.run(30);
  const PipelineResult rc = c.run(30);
  expect_deterministic_stats_equal(ra, rb);
  expect_deterministic_stats_equal(ra, rc);

  const auto ea = sorted_events(trace_base);
  const auto eb = sorted_events(trace_wide);
  const auto ec = sorted_events(trace_untiled);
  ASSERT_EQ(ea.size(), eb.size());
  ASSERT_EQ(ea.size(), ec.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    for (const auto* other : {&eb[i], &ec[i]}) {
      EXPECT_EQ(ea[i].frame, other->frame);
      EXPECT_EQ(ea[i].camera, other->camera);
      EXPECT_EQ(ea[i].type, other->type);
      EXPECT_EQ(ea[i].object_key, other->object_key);
      EXPECT_DOUBLE_EQ(ea[i].value, other->value);
    }
  }
}

TEST(PipelineBehaviour, ObsDeterministicAcrossThreadCounts) {
  // With observability on, metric values and span counts must be
  // bit-identical at threads=1 and threads=8 — only durations (excluded
  // from the fingerprint) may differ. Guards against instrumentation that
  // depends on the thread schedule (e.g. last-writer-wins gauges written
  // from pool threads).
  const auto run_observed = [](int threads, std::string* fingerprint,
                               std::map<std::string, long long>* spans) {
    obs::reset();
    obs::set_enabled(true);
    PipelineConfig cfg = fast_config(Policy::kBalb, 21);
    cfg.threads = threads;
    Pipeline pipeline("S2", cfg);
    (void)pipeline.run(30);
    obs::set_enabled(false);
    *fingerprint = obs::metrics().fingerprint();
    *spans = obs::tracer().span_counts();
    obs::reset();
  };

  std::string fp_one, fp_wide;
  std::map<std::string, long long> spans_one, spans_wide;
  run_observed(1, &fp_one, &spans_one);
  run_observed(8, &fp_wide, &spans_wide);

  EXPECT_FALSE(fp_one.empty());
  EXPECT_EQ(fp_one, fp_wide);
  EXPECT_FALSE(spans_one.empty());
  EXPECT_EQ(spans_one, spans_wide);
  // The instrumented stages all fired.
  for (const char* name : {"pipeline.frame", "pipeline.camera",
                           "pipeline.tracking", "gpu.batch"})
    EXPECT_GT(spans_one.count(name), 0u) << name;
}

TEST(PipelineBehaviour, FramePolicyKindsDeterministicAcrossThreadCounts) {
  // Every detect-or-track policy kind must be bit-identical at threads=1
  // and threads=8: decide() only touches per-camera state, so the parallel
  // per-camera step may not perturb decisions or results.
  policy::PolicyConfig kinds[3];
  kinds[0].kind = policy::PolicyKind::kFixed;
  kinds[1].kind = policy::PolicyKind::kHeuristic;
  kinds[2].kind = policy::PolicyKind::kLearned;
  {
    // Minimal valid logistic model: detect when frames_since_detect >= ~2.
    policy::Model m;
    m.mean.assign(policy::kFeatureCount, 0.0);
    m.scale.assign(policy::kFeatureCount, 1.0);
    m.weights.assign(policy::kFeatureCount, 0.0);
    m.weights[0] = 2.0;
    m.bias = -3.0;
    kinds[2].model_json = policy::dump_model(m);
  }
  for (const policy::PolicyConfig& pc : kinds) {
    PipelineConfig one = fast_config(Policy::kBalb, 33);
    one.frame_policy = pc;
    one.threads = 1;
    PipelineConfig wide = one;
    wide.threads = 8;
    Pipeline a("S2", one);
    Pipeline b("S2", wide);
    const PipelineResult ra = a.run(30);
    const PipelineResult rb = b.run(30);
    expect_deterministic_stats_equal(ra, rb);
  }
}

TEST(PipelineBehaviour, FixedPolicySelectionBitIdenticalToPrePolicy) {
  // Selecting policy "fixed" (with or without feature-trace recording, with
  // paired_rng off) must reproduce the default pipeline bit-for-bit: the
  // policy layer and its recording hooks may not perturb the RNG stream,
  // the slicing, or any stat.
  const PipelineConfig base = fast_config(Policy::kBalb, 7);
  Pipeline plain("S2", base);
  const PipelineResult rp = plain.run(30);

  PipelineConfig fixed_cfg = base;
  fixed_cfg.frame_policy.kind = policy::PolicyKind::kFixed;
  EXPECT_FALSE(fixed_cfg.paired_rng) << "paired_rng must default off";
  Pipeline fixed_run("S2", fixed_cfg);
  expect_deterministic_stats_equal(rp, fixed_run.run(30));

  PipelineConfig recording = fixed_cfg;
  recording.frame_policy.feature_trace =
      ::testing::TempDir() + "/policy_trace_bitident.jsonl";
  Pipeline recorded("S2", recording);
  expect_deterministic_stats_equal(rp, recorded.run(30));
}

TEST(PipelineBehaviour, HeuristicPolicySkipsDetectionAndSavesGpu) {
  // The heuristic must actually skip regular-frame inspections: strictly
  // less GPU busy than fixed, while key frames stay untouched.
  const PipelineConfig base = fast_config(Policy::kBalb, 9);
  PipelineConfig heur = base;
  heur.frame_policy.kind = policy::PolicyKind::kHeuristic;

  Pipeline a("S2", base);
  Pipeline b("S2", heur);
  const PipelineResult ra = a.run(40);
  const PipelineResult rb = b.run(40);

  const auto busy = [](const PipelineResult& r) {
    double total = 0.0;
    for (const FrameStats& f : r.frames)
      for (double ms : f.camera_infer_ms) total += ms;
    return total;
  };
  EXPECT_LT(busy(rb), busy(ra));
  for (std::size_t i = 0; i < ra.frames.size(); ++i) {
    if (!ra.frames[i].key_frame) continue;
    EXPECT_EQ(ra.frames[i].camera_infer_ms, rb.frames[i].camera_infer_ms)
        << "key frame " << ra.frames[i].frame << " must be unaffected";
  }
}

TEST(PipelineBehaviour, RunFrameMatchesRunExactly) {
  // run_frame x N must be bit-identical to run(N), and run() must keep its
  // delta semantics when mixed with stepwise calls.
  Pipeline batch("S2", fast_config(Policy::kBalb, 11));
  Pipeline step("S2", fast_config(Policy::kBalb, 11));
  const PipelineResult rb = batch.run(25);
  for (int f = 0; f < 25; ++f) step.run_frame();
  expect_deterministic_stats_equal(rb, step.result());

  // A subsequent run() only reports its own frames but snapshots accumulate.
  const PipelineResult more = step.run(5);
  EXPECT_EQ(more.frames.size(), 5u);
  EXPECT_EQ(more.frames.front().frame, rb.frames.back().frame + 1);
  EXPECT_EQ(step.result().frames.size(), 30u);
}

TEST(PipelineBehaviour, FleetOfOneBitIdenticalToStandalonePipeline) {
  // A fleet hosting exactly one session (ideal transport, same seed) must
  // reproduce the standalone pipeline bit-for-bit: shared-pool execution,
  // stepwise driving, and cross-session arbitration may not perturb
  // single-session results.
  const PipelineConfig cfg = fast_config(Policy::kBalb, 5);
  Pipeline standalone("S2", cfg);
  const PipelineResult solo = standalone.run(25);

  fleet::Fleet fleet;
  fleet::SessionSpec spec;
  spec.name = "solo";
  spec.scenario = "S2";
  spec.pipeline = cfg;
  const fleet::AdmitResult admitted = fleet.admit(spec);
  ASSERT_TRUE(admitted.admitted);
  fleet.run(25);
  const PipelineResult hosted = fleet.result(admitted.handle);
  expect_deterministic_stats_equal(solo, hosted);

  // The arbiter must also charge the lone session exactly its own plan: the
  // fleet's attributed latency equals the isolated counterfactual.
  const fleet::FleetSnapshot snap = fleet.snapshot();
  ASSERT_EQ(snap.sessions.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.sessions[0].mean_ms, snap.sessions[0].mean_isolated_ms);
  EXPECT_EQ(snap.shared_batches, snap.isolated_batches);
  EXPECT_DOUBLE_EQ(snap.shared_busy_ms, snap.isolated_busy_ms);
}

TEST(PipelineBehaviour, FleetOfOneWithFixedPolicyBitIdentical) {
  // Hosting a session that explicitly selects policy "fixed" must still be
  // bit-identical to the standalone default pipeline: the fleet's
  // policy-aware admission path may not perturb execution.
  const PipelineConfig plain = fast_config(Policy::kBalb, 5);
  Pipeline standalone("S2", plain);
  const PipelineResult solo = standalone.run(25);

  PipelineConfig cfg = plain;
  cfg.frame_policy.kind = policy::PolicyKind::kFixed;
  fleet::Fleet fleet;
  fleet::SessionSpec spec;
  spec.name = "solo-fixed";
  spec.scenario = "S2";
  spec.pipeline = cfg;
  const fleet::AdmitResult admitted = fleet.admit(spec);
  ASSERT_TRUE(admitted.admitted);
  fleet.run(25);
  expect_deterministic_stats_equal(solo, fleet.result(admitted.handle));
}

TEST(PipelineBehaviour, DeterministicForSeed) {
  Pipeline a("S2", fast_config(Policy::kBalb, 77));
  Pipeline b("S2", fast_config(Policy::kBalb, 77));
  const PipelineResult ra = a.run(30);
  const PipelineResult rb = b.run(30);
  EXPECT_DOUBLE_EQ(ra.object_recall, rb.object_recall);
  EXPECT_DOUBLE_EQ(ra.mean_slowest_infer_ms(), rb.mean_slowest_infer_ms());
  for (std::size_t f = 0; f < ra.frames.size(); ++f)
    EXPECT_DOUBLE_EQ(ra.frames[f].slowest_infer_ms,
                     rb.frames[f].slowest_infer_ms);
}

}  // namespace
}  // namespace mvs::runtime

#include <gtest/gtest.h>

#include "gpu/batch_planner.hpp"
#include "gpu/device_profile.hpp"

namespace mvs::gpu {
namespace {

TEST(DeviceProfile, JetsonProfilesValid) {
  for (const DeviceProfile& d : {jetson_xavier(), jetson_tx2(), jetson_nano()}) {
    EXPECT_GT(d.full_frame_ms(), 0.0);
    EXPECT_EQ(d.size_class_count(), 4u);
    for (geom::SizeClassId s = 0; s < 4; ++s) {
      EXPECT_GE(d.batch_limit(s), 1);
      EXPECT_GT(d.batch_latency_ms(s), 0.0);
    }
  }
}

TEST(DeviceProfile, HeterogeneityOrdering) {
  // Xavier is strictly faster than TX2, which is faster than Nano.
  const DeviceProfile xavier = jetson_xavier(), tx2 = jetson_tx2(),
                      nano = jetson_nano();
  EXPECT_LT(xavier.full_frame_ms(), tx2.full_frame_ms());
  EXPECT_LT(tx2.full_frame_ms(), nano.full_frame_ms());
  for (geom::SizeClassId s = 0; s < 4; ++s) {
    EXPECT_LE(xavier.batch_latency_ms(s), tx2.batch_latency_ms(s));
    EXPECT_GE(xavier.batch_limit(s), tx2.batch_limit(s));
  }
  EXPECT_GT(xavier.relative_power(), nano.relative_power());
}

TEST(DeviceProfile, LargerSizesSlower) {
  const DeviceProfile d = jetson_tx2();
  for (geom::SizeClassId s = 0; s + 1 < 4; ++s) {
    EXPECT_LT(d.batch_latency_ms(s), d.batch_latency_ms(s + 1));
    EXPECT_GE(d.batch_limit(s), d.batch_limit(s + 1));
  }
}

TEST(DeviceProfile, ActualLatencySubLinearInFill) {
  const DeviceProfile d = jetson_xavier();
  const geom::SizeClassId s = 1;
  const int limit = d.batch_limit(s);
  // Full batch costs exactly t_i^s; partial batches cost less but more than
  // the 60% floor.
  EXPECT_DOUBLE_EQ(d.actual_batch_latency_ms(s, limit), d.batch_latency_ms(s));
  EXPECT_LT(d.actual_batch_latency_ms(s, 1), d.batch_latency_ms(s));
  EXPECT_GT(d.actual_batch_latency_ms(s, 1), 0.5 * d.batch_latency_ms(s));
  // Monotone in count.
  for (int b = 1; b < limit; ++b)
    EXPECT_LT(d.actual_batch_latency_ms(s, b),
              d.actual_batch_latency_ms(s, b + 1));
}

TEST(BatchPlanner, EmptyTasks) {
  const BatchPlan plan = plan_batches({}, jetson_nano());
  EXPECT_TRUE(plan.batches.empty());
  EXPECT_DOUBLE_EQ(plan.planned_latency_ms, 0.0);
}

TEST(BatchPlanner, SingleTask) {
  const DeviceProfile d = jetson_tx2();
  const BatchPlan plan = plan_batches({2}, d);
  ASSERT_EQ(plan.batches.size(), 1u);
  EXPECT_EQ(plan.batches[0].count, 1);
  EXPECT_DOUBLE_EQ(plan.planned_latency_ms, d.batch_latency_ms(2));
}

TEST(BatchPlanner, FillsBatchBeforeOpeningNew) {
  const DeviceProfile d = jetson_tx2();  // limit(size 0) == 16
  std::vector<geom::SizeClassId> tasks(16, 0);
  const BatchPlan one = plan_batches(tasks, d);
  EXPECT_EQ(one.batches.size(), 1u);
  tasks.push_back(0);
  const BatchPlan two = plan_batches(tasks, d);
  EXPECT_EQ(two.batches.size(), 2u);
  EXPECT_DOUBLE_EQ(two.planned_latency_ms, 2 * d.batch_latency_ms(0));
}

TEST(BatchPlanner, MixedSizesBatchedSeparately) {
  const DeviceProfile d = jetson_xavier();
  const BatchPlan plan = plan_batches({0, 1, 0, 1, 2}, d);
  // 2x size0 (one batch), 2x size1 (one batch), 1x size2 (one batch).
  EXPECT_EQ(plan.batches.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.planned_latency_ms,
                   d.batch_latency_ms(0) + d.batch_latency_ms(1) +
                       d.batch_latency_ms(2));
}

TEST(BatchPlanner, ActualNeverExceedsPlanned) {
  const DeviceProfile d = jetson_nano();
  const BatchPlan plan = plan_batches({0, 0, 0, 1, 2, 3, 3}, d);
  EXPECT_LE(plan.actual_latency_ms, plan.planned_latency_ms + 1e-9);
  EXPECT_GT(plan.actual_latency_ms, 0.0);
}

/// Parameterized sweep: batch count is always ceil(n / limit).
class BatchCount : public ::testing::TestWithParam<int> {};

TEST_P(BatchCount, CeilDivision) {
  const int n = GetParam();
  const DeviceProfile d = jetson_tx2();
  for (geom::SizeClassId s = 0; s < 4; ++s) {
    const std::vector<geom::SizeClassId> tasks(static_cast<std::size_t>(n), s);
    const BatchPlan plan = plan_batches(tasks, d);
    const int limit = d.batch_limit(s);
    const int expected = (n + limit - 1) / limit;
    EXPECT_EQ(static_cast<int>(plan.batches.size()), expected);
    // Every batch within the limit, total count preserved.
    int total = 0;
    for (const Batch& b : plan.batches) {
      EXPECT_LE(b.count, limit);
      EXPECT_GE(b.count, 1);
      total += b.count;
    }
    EXPECT_EQ(total, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, BatchCount,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 15, 16, 17, 31,
                                           32, 33, 100));

TEST(MarginalLatency, ZeroWithOpenBatch) {
  const DeviceProfile d = jetson_tx2();
  // One image of size 0 batched: limit 16 -> open batch, marginal cost 0.
  EXPECT_DOUBLE_EQ(marginal_latency_ms({1, 0, 0, 0}, 0, d), 0.0);
}

TEST(MarginalLatency, FullCostWhenBatchFullOrEmpty) {
  const DeviceProfile d = jetson_tx2();
  EXPECT_DOUBLE_EQ(marginal_latency_ms({0, 0, 0, 0}, 0, d),
                   d.batch_latency_ms(0));
  EXPECT_DOUBLE_EQ(marginal_latency_ms({16, 0, 0, 0}, 0, d),
                   d.batch_latency_ms(0));
  EXPECT_DOUBLE_EQ(marginal_latency_ms({15, 0, 0, 0}, 0, d), 0.0);
}

}  // namespace
}  // namespace mvs::gpu

#include <gtest/gtest.h>

#include "core/problem.hpp"

namespace mvs::core {
namespace {

MvsProblem two_camera_problem() {
  MvsProblem p;
  p.cameras = {gpu::jetson_xavier(), gpu::jetson_nano()};
  ObjectSpec a;
  a.key = 0;
  a.coverage = {0};
  a.size_class = {1, 0};
  ObjectSpec b;
  b.key = 1;
  b.coverage = {0, 1};
  b.size_class = {1, 1};
  p.objects = {a, b};
  return p;
}

Assignment empty_assignment(const MvsProblem& p) {
  Assignment a;
  a.x.assign(p.camera_count(), std::vector<char>(p.object_count(), 0));
  a.camera_latency.assign(p.camera_count(), 0.0);
  return a;
}

TEST(Feasibility, ValidAssignment) {
  const MvsProblem p = two_camera_problem();
  Assignment a = empty_assignment(p);
  a.x[0][0] = 1;
  a.x[1][1] = 1;
  EXPECT_TRUE(is_feasible(p, a));
}

TEST(Feasibility, UntrackedObjectRejected) {
  const MvsProblem p = two_camera_problem();
  Assignment a = empty_assignment(p);
  a.x[0][0] = 1;  // object 1 untracked
  EXPECT_FALSE(is_feasible(p, a));
}

TEST(Feasibility, NonCoveringCameraRejected) {
  const MvsProblem p = two_camera_problem();
  Assignment a = empty_assignment(p);
  a.x[1][0] = 1;  // camera 1 cannot see object 0
  a.x[0][1] = 1;
  EXPECT_FALSE(is_feasible(p, a));
}

TEST(Feasibility, MultipleTrackersAllowed) {
  const MvsProblem p = two_camera_problem();
  Assignment a = empty_assignment(p);
  a.x[0][0] = 1;
  a.x[0][1] = 1;
  a.x[1][1] = 1;  // object 1 tracked twice: allowed by Definition 2
  EXPECT_TRUE(is_feasible(p, a));
}

TEST(Feasibility, WrongShapeRejected) {
  const MvsProblem p = two_camera_problem();
  Assignment a;
  a.x.assign(1, std::vector<char>(2, 1));
  EXPECT_FALSE(is_feasible(p, a));
}

TEST(Assignment, SystemLatencyIsMax) {
  Assignment a;
  a.camera_latency = {10.0, 35.0, 20.0};
  EXPECT_DOUBLE_EQ(a.system_latency(), 35.0);
}

TEST(Assignment, PriorityOrderAscendingLatency) {
  Assignment a;
  a.camera_latency = {30.0, 10.0, 20.0};
  const std::vector<int> order = a.priority_order();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(Assignment, PriorityOrderStableOnTies) {
  Assignment a;
  a.camera_latency = {10.0, 10.0, 5.0};
  const std::vector<int> order = a.priority_order();
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1}));
}

TEST(RegularFrameLatencies, BatchingApplied) {
  MvsProblem p;
  p.cameras = {gpu::jetson_tx2()};  // limit(size 0) = 16, t = 12 ms
  for (int j = 0; j < 20; ++j) {
    ObjectSpec obj;
    obj.key = static_cast<std::uint64_t>(j);
    obj.coverage = {0};
    obj.size_class = {0};
    p.objects.push_back(obj);
  }
  Assignment a = empty_assignment(p);
  for (int j = 0; j < 20; ++j) a.x[0][static_cast<std::size_t>(j)] = 1;
  const auto lat = regular_frame_latencies(p, a);
  // 20 size-0 tasks -> 2 batches -> 24 ms.
  EXPECT_DOUBLE_EQ(lat[0], 24.0);
}

TEST(RecomputedSystemLatency, IncludesFullFrame) {
  const MvsProblem p = two_camera_problem();
  Assignment a = empty_assignment(p);
  a.x[0][0] = 1;
  a.x[0][1] = 1;
  // Camera 0 (xavier): full 45 + one size-1 batch (two tasks fit) 8 = 53.
  // Camera 1 (nano): idle -> full 280 dominates.
  EXPECT_DOUBLE_EQ(recomputed_system_latency(p, a), 280.0);
}

}  // namespace
}  // namespace mvs::core

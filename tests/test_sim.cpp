#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "sim/camera_model.hpp"
#include "sim/dataset.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace mvs::sim {
namespace {

TEST(Route, LengthAndInterpolation) {
  const Route r({{0, 0}, {10, 0}, {10, 10}}, 5.0);
  EXPECT_DOUBLE_EQ(r.length(), 20.0);
  EXPECT_DOUBLE_EQ(r.position_at(5.0).x, 5.0);
  EXPECT_DOUBLE_EQ(r.position_at(15.0).y, 5.0);
  EXPECT_DOUBLE_EQ(r.position_at(-3.0).x, 0.0);   // clamped
  EXPECT_DOUBLE_EQ(r.position_at(99.0).y, 10.0);  // clamped
}

TEST(Route, HeadingFollowsSegments) {
  const Route r({{0, 0}, {10, 0}, {10, 10}}, 5.0);
  EXPECT_DOUBLE_EQ(r.heading_at(5.0).x, 1.0);
  EXPECT_DOUBLE_EQ(r.heading_at(15.0).y, 1.0);
}

TEST(LightSchedule, TwoPhaseCycle) {
  LightSchedule lights;
  lights.green_s = 10.0;
  lights.all_red_s = 2.0;
  // Phase 0 green in [0, 10), all red [10, 12), phase 1 green [12, 22).
  EXPECT_TRUE(lights.is_green(0, 5.0));
  EXPECT_FALSE(lights.is_green(1, 5.0));
  EXPECT_FALSE(lights.is_green(0, 11.0));
  EXPECT_FALSE(lights.is_green(1, 11.0));
  EXPECT_TRUE(lights.is_green(1, 15.0));
  EXPECT_FALSE(lights.is_green(0, 15.0));
  // Cycle repeats at 24 s.
  EXPECT_TRUE(lights.is_green(0, 24.0 + 5.0));
}

TEST(LightSchedule, UncontrolledAlwaysGreen) {
  const LightSchedule lights;
  EXPECT_TRUE(lights.is_green(-1, 123.0));
}

TEST(ObjectDims, ClassesDiffer) {
  EXPECT_GT(dims_for(detect::ObjectClass::kBus).length,
            dims_for(detect::ObjectClass::kCar).length);
  EXPECT_LT(dims_for(detect::ObjectClass::kPerson).width, 1.0);
}

World simple_world(double rate = 0.5, std::uint64_t seed = 1) {
  std::vector<Route> routes;
  routes.emplace_back(std::vector<geom::Vec2>{{0, 0}, {100, 0}}, 10.0);
  return World(std::move(routes), {{0, rate, {1.0, 1.0, 1.0, 1.0}}},
               LightSchedule{}, seed);
}

TEST(World, SpawnsAndAdvances) {
  World world = simple_world(2.0);
  for (int i = 0; i < 100; ++i) world.step(0.1);
  EXPECT_GT(world.spawned_count(), 3u);
  EXPECT_FALSE(world.objects().empty());
  EXPECT_NEAR(world.time(), 10.0, 1e-9);
}

TEST(World, ObjectsDepartAtRouteEnd) {
  World world = simple_world(5.0);
  for (int i = 0; i < 3000; ++i) world.step(0.1);
  // Route is 100 m at 10 m/s: everything spawned early must be gone.
  for (const WorldObject& obj : world.objects()) EXPECT_LT(obj.s, 100.0);
}

TEST(World, NoOvertakingOnSameRoute) {
  World world = simple_world(3.0, 7);
  for (int i = 0; i < 600; ++i) {
    world.step(0.1);
    // Objects on the same route keep their arc-length order with a gap.
    std::vector<double> positions;
    for (const WorldObject& obj : world.objects())
      positions.push_back(obj.s);
    std::sort(positions.begin(), positions.end());
    for (std::size_t k = 1; k < positions.size(); ++k)
      EXPECT_GT(positions[k] - positions[k - 1], 1.0);
  }
}

TEST(World, RedLightStopsTraffic) {
  std::vector<Route> routes;
  Route r({{0, 0}, {100, 0}}, 10.0);
  r.stop_line_s = 50.0;
  r.phase_group = 1;  // phase 1 is red at t=0 with the default schedule
  routes.push_back(std::move(r));
  World world(std::move(routes), {{0, 3.0, {1, 1, 1, 1}}}, LightSchedule{}, 3);
  // During phase-0 green (first 12 s), phase-1 traffic must hold at the line.
  for (int i = 0; i < 110; ++i) world.step(0.1);
  for (const WorldObject& obj : world.objects()) EXPECT_LT(obj.s, 51.0);
}

TEST(World, UniqueMonotoneIds) {
  World world = simple_world(5.0);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 500; ++i) {
    world.step(0.1);
    for (const WorldObject& obj : world.objects()) ids.insert(obj.id);
  }
  EXPECT_EQ(ids.size(), world.spawned_count());
}

TEST(World, DeterministicForSeed) {
  World a = simple_world(1.0, 5);
  World b = simple_world(1.0, 5);
  for (int i = 0; i < 200; ++i) {
    a.step(0.1);
    b.step(0.1);
  }
  ASSERT_EQ(a.objects().size(), b.objects().size());
  for (std::size_t k = 0; k < a.objects().size(); ++k)
    EXPECT_DOUBLE_EQ(a.objects()[k].s, b.objects()[k].s);
}

CameraModel test_camera() {
  CameraModel::Config cfg;
  cfg.position = {0, 0, 6};
  cfg.yaw_deg = 0;   // looking along +x
  cfg.pitch_deg = -15;
  return CameraModel(cfg);
}

WorldObject object_at(geom::Vec2 pos, geom::Vec2 heading = {1, 0}) {
  WorldObject obj;
  obj.id = 1;
  obj.position = pos;
  obj.heading = heading;
  obj.dims = dims_for(detect::ObjectClass::kCar);
  return obj;
}

TEST(CameraModel, PointInFrontProjectsInside) {
  const CameraModel cam = test_camera();
  const auto px = cam.project({20, 0, 1});
  ASSERT_TRUE(px.has_value());
  EXPECT_GT(px->x, 0);
  EXPECT_LT(px->x, 1280);
}

TEST(CameraModel, PointBehindRejected) {
  const CameraModel cam = test_camera();
  EXPECT_FALSE(cam.project({-20, 0, 1}).has_value());
}

TEST(CameraModel, DepthRangeEnforced) {
  const CameraModel cam = test_camera();
  EXPECT_FALSE(cam.project({0.5, 0, 5.9}).has_value());   // too close
  EXPECT_FALSE(cam.project({500, 0, 1}).has_value());     // too far
}

TEST(CameraModel, CloserObjectsLookBigger) {
  const CameraModel cam = test_camera();
  const auto near = cam.observe(object_at({15, 0}));
  const auto far = cam.observe(object_at({60, 0}));
  ASSERT_TRUE(near.has_value());
  ASSERT_TRUE(far.has_value());
  EXPECT_GT(near->box.area(), 2.0 * far->box.area());
  EXPECT_LT(near->distance_m, far->distance_m);
}

TEST(CameraModel, LateralOffsetMovesBoxSideways) {
  const CameraModel cam = test_camera();
  const auto center = cam.observe(object_at({30, 0}));
  const auto left = cam.observe(object_at({30, 5}));
  ASSERT_TRUE(center.has_value());
  ASSERT_TRUE(left.has_value());
  EXPECT_NE(center->box.center().x, left->box.center().x);
}

TEST(CameraModel, ObjectOutsideFrustumInvisible) {
  const CameraModel cam = test_camera();
  EXPECT_FALSE(cam.observe(object_at({30, 200})).has_value());
  EXPECT_FALSE(cam.observe(object_at({-30, 0})).has_value());
}

TEST(CameraModel, BoxClampedToFrame) {
  const CameraModel cam = test_camera();
  const auto gt = cam.observe(object_at({8, 0}));
  if (gt.has_value()) {
    EXPECT_GE(gt->box.x, 0.0);
    EXPECT_LE(gt->box.x2(), 1280.0);
    EXPECT_LE(gt->box.y2(), 704.0);
  }
}

class ScenarioFactory : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioFactory, WellFormed) {
  const Scenario s = make_scenario(GetParam(), 1);
  EXPECT_EQ(s.name, GetParam());
  EXPECT_FALSE(s.cameras.empty());
  ASSERT_NE(s.world, nullptr);
  EXPECT_GT(s.fps, 0.0);
}

TEST_P(ScenarioFactory, ProducesVisibleObjects) {
  ScenarioPlayer player(make_scenario(GetParam(), 1), 60.0);
  std::size_t total = 0;
  for (const MultiFrame& frame : player.take(50))
    for (const auto& cam : frame.per_camera) total += cam.size();
  EXPECT_GT(total, 20u);
}

TEST_P(ScenarioFactory, CamerasShareViews) {
  // The paper's premise: at least some objects are observed by >= 2 cameras.
  ScenarioPlayer player(make_scenario(GetParam(), 1), 60.0);
  std::size_t shared = 0;
  for (const MultiFrame& frame : player.take(100)) {
    std::map<std::uint64_t, int> seen_by;
    for (const auto& cam : frame.per_camera)
      for (const auto& gt : cam) ++seen_by[gt.id];
    for (const auto& [id, count] : seen_by)
      if (count >= 2) ++shared;
  }
  EXPECT_GT(shared, 10u);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ScenarioFactory,
                         ::testing::Values("S1", "S2", "S3"));

TEST(Scenario, HardwareMatchesTableI) {
  const Scenario s1 = make_s1(1);
  ASSERT_EQ(s1.cameras.size(), 5u);
  int xavier = 0, tx2 = 0, nano = 0;
  for (const ScenarioCamera& cam : s1.cameras) {
    xavier += cam.device.name() == "xavier";
    tx2 += cam.device.name() == "tx2";
    nano += cam.device.name() == "nano";
  }
  EXPECT_EQ(xavier, 2);
  EXPECT_EQ(tx2, 2);
  EXPECT_EQ(nano, 1);

  const Scenario s2 = make_s2(1);
  ASSERT_EQ(s2.cameras.size(), 2u);
  const Scenario s3 = make_s3(1);
  ASSERT_EQ(s3.cameras.size(), 3u);
}

TEST(Scenario, UnknownNameThrows) {
  EXPECT_THROW(make_scenario("S9", 1), std::invalid_argument);
}

TEST(ScenarioPlayer, FrameIndexAndTimeAdvance) {
  ScenarioPlayer player(make_s2(1), 10.0);
  const MultiFrame a = player.next();
  const MultiFrame b = player.next();
  EXPECT_EQ(a.frame_index, 0);
  EXPECT_EQ(b.frame_index, 1);
  EXPECT_NEAR(b.time_s - a.time_s, 0.1, 1e-9);
  EXPECT_EQ(a.per_camera.size(), 2u);
}

TEST(ScenarioPlayer, S1WorkloadVariesOverTime) {
  // The Fig. 2 phenomenon: per-camera object counts fluctuate with the
  // traffic-light cycle.
  ScenarioPlayer player(make_s1(1), 90.0);
  std::vector<std::size_t> counts;
  for (const MultiFrame& frame : player.take(300))
    counts.push_back(frame.per_camera[0].size());
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*hi, *lo);  // non-constant workload
}

}  // namespace
}  // namespace mvs::sim

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "assoc/association.hpp"
#include "metrics/metrics.hpp"
#include "sim/dataset.hpp"
#include "sim/scenario.hpp"

namespace mvs::assoc {
namespace {

TEST(BoxFeature, RoundTrip) {
  const geom::BBox box{100, 200, 50, 80};
  const ml::Feature f = box_feature(box, 1280, 704);
  EXPECT_NEAR(f[0], 125.0 / 1280.0, 1e-12);
  EXPECT_NEAR(f[2], 50.0 / 1280.0, 1e-12);
  const geom::BBox back = feature_box(f, 1280, 704);
  EXPECT_NEAR(back.x, box.x, 1e-9);
  EXPECT_NEAR(back.h, box.h, 1e-9);
}

class AssocFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::ScenarioPlayer player(sim::make_s2(3), 60.0);
    train_ = player.take(200);
    test_ = player.take(100);
    std::vector<std::pair<double, double>> sizes;
    for (const sim::ScenarioCamera& cam : player.scenario().cameras)
      sizes.emplace_back(cam.model.width(), cam.model.height());
    associator_ = std::make_unique<CrossCameraAssociator>(sizes);
    associator_->train(train_);
  }

  std::vector<sim::MultiFrame> train_, test_;
  std::unique_ptr<CrossCameraAssociator> associator_;
};

TEST_F(AssocFixture, PairDatasetConsistent) {
  const PairDataset ds =
      build_pair_dataset(train_, 0, 1, 1280, 704, 1280, 704);
  EXPECT_EQ(ds.x.size(), ds.present.size());
  EXPECT_EQ(ds.x_pos.size(), ds.y_pos.size());
  std::size_t positives = 0;
  for (int p : ds.present) positives += static_cast<std::size_t>(p);
  EXPECT_EQ(positives, ds.x_pos.size());
  EXPECT_GT(ds.x.size(), 50u);
}

TEST_F(AssocFixture, ClassifierBeatsChanceOnHeldOut) {
  metrics::BinaryMetrics m;
  for (const sim::MultiFrame& frame : test_) {
    for (const detect::GroundTruthObject& obj : frame.per_camera[0]) {
      bool actual = false;
      for (const detect::GroundTruthObject& other : frame.per_camera[1])
        if (other.id == obj.id) actual = true;
      m.add(associator_->predict_present(0, 1, obj.box), actual);
    }
  }
  EXPECT_GT(m.total(), 50u);
  EXPECT_GT(m.precision(), 0.6);
  EXPECT_GT(m.recall(), 0.6);
}

TEST_F(AssocFixture, RegressionLandsNearTruth) {
  double total_iou = 0.0;
  std::size_t count = 0;
  for (const sim::MultiFrame& frame : test_) {
    for (const detect::GroundTruthObject& obj : frame.per_camera[0]) {
      for (const detect::GroundTruthObject& other : frame.per_camera[1]) {
        if (other.id != obj.id) continue;
        const geom::BBox pred = associator_->predict_box(0, 1, obj.box);
        total_iou += geom::iou(pred, other.box);
        ++count;
      }
    }
  }
  ASSERT_GT(count, 20u);
  EXPECT_GT(total_iou / static_cast<double>(count), 0.3);
}

TEST_F(AssocFixture, AssociateMergesCrossCameraDuplicates) {
  std::size_t merged = 0, frames_with_shared = 0;
  for (const sim::MultiFrame& frame : test_) {
    // Use ground truth as perfect detections.
    std::vector<std::vector<detect::Detection>> dets(2);
    std::map<std::uint64_t, int> seen_by;
    for (std::size_t c = 0; c < 2; ++c) {
      for (const detect::GroundTruthObject& obj : frame.per_camera[c]) {
        detect::Detection d;
        d.box = obj.box;
        d.truth_id = obj.id;
        d.score = 0.9;
        dets[c].push_back(d);
        ++seen_by[obj.id];
      }
    }
    bool has_shared = false;
    for (const auto& [id, n] : seen_by)
      if (n >= 2) has_shared = true;
    if (!has_shared) continue;
    ++frames_with_shared;

    const auto objects = associator_->associate(dets);
    for (const AssociatedObject& obj : objects) {
      int covered = 0;
      for (int det_index : obj.det_index) covered += (det_index >= 0);
      if (covered >= 2) ++merged;
    }
  }
  ASSERT_GT(frames_with_shared, 5u);
  EXPECT_GT(merged, frames_with_shared / 2);  // merging happens regularly
}

TEST_F(AssocFixture, AssociateKeepsEveryDetection) {
  for (int t = 0; t < 10; ++t) {
    const sim::MultiFrame& frame = test_[static_cast<std::size_t>(t * 5)];
    std::vector<std::vector<detect::Detection>> dets(2);
    std::size_t total = 0;
    for (std::size_t c = 0; c < 2; ++c) {
      for (const detect::GroundTruthObject& obj : frame.per_camera[c]) {
        detect::Detection d;
        d.box = obj.box;
        dets[c].push_back(d);
        ++total;
      }
    }
    const auto objects = associator_->associate(dets);
    std::size_t accounted = 0;
    for (const AssociatedObject& obj : objects)
      for (int det_index : obj.det_index) accounted += (det_index >= 0);
    EXPECT_EQ(accounted, total);  // no detection lost or duplicated
  }
}

TEST_F(AssocFixture, AssociateAtMostOneDetectionPerCamera) {
  for (const sim::MultiFrame& frame : test_) {
    std::vector<std::vector<detect::Detection>> dets(2);
    for (std::size_t c = 0; c < 2; ++c)
      for (const detect::GroundTruthObject& obj : frame.per_camera[c]) {
        detect::Detection d;
        d.box = obj.box;
        dets[c].push_back(d);
      }
    for (const AssociatedObject& obj : associator_->associate(dets)) {
      for (std::size_t c = 0; c < 2; ++c) {
        if (obj.det_index[c] >= 0)
          EXPECT_LT(obj.det_index[c], static_cast<int>(dets[c].size()));
      }
    }
  }
}

TEST(Associator, UntrainedNeverClaimsPresence) {
  CrossCameraAssociator assoc({{1280, 704}, {1280, 704}});
  EXPECT_FALSE(assoc.trained());
  EXPECT_FALSE(assoc.predict_present(0, 1, {100, 100, 50, 50}));
}

TEST(Associator, EmptyDetectionsYieldNoObjects) {
  CrossCameraAssociator assoc({{1280, 704}, {1280, 704}});
  const auto objects = assoc.associate({{}, {}});
  EXPECT_TRUE(objects.empty());
}

}  // namespace
}  // namespace mvs::assoc

#include <gtest/gtest.h>

#include "metrics/metrics.hpp"

namespace mvs::metrics {
namespace {

detect::GroundTruthObject gt(std::uint64_t id, geom::BBox box) {
  detect::GroundTruthObject obj;
  obj.id = id;
  obj.box = box;
  return obj;
}

TEST(BinaryMetrics, CountsAndDerived) {
  BinaryMetrics m;
  m.add(true, true);    // tp
  m.add(true, true);    // tp
  m.add(true, false);   // fp
  m.add(false, true);   // fn
  m.add(false, false);  // tn
  EXPECT_EQ(m.tp, 2u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.fn, 1u);
  EXPECT_EQ(m.tn, 1u);
  EXPECT_NEAR(m.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.recall(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.f1(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(m.total(), 5u);
}

TEST(BinaryMetrics, EmptyIsZero) {
  BinaryMetrics m;
  EXPECT_DOUBLE_EQ(m.precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.f1(), 0.0);
}

TEST(ObjectRecall, PerfectTracking) {
  ObjectRecall recall(0.5);
  const std::vector<std::vector<detect::GroundTruthObject>> truth = {
      {gt(1, {0, 0, 20, 20})}, {gt(1, {100, 100, 30, 30})}};
  const std::vector<std::vector<geom::BBox>> reported = {
      {{1, 1, 20, 20}}, {}};
  EXPECT_DOUBLE_EQ(recall.add_frame(truth, reported), 1.0);
  EXPECT_DOUBLE_EQ(recall.recall(), 1.0);
}

TEST(ObjectRecall, AnyCameraSuffices) {
  // Object missed on camera 0 but localized on camera 1 -> still a TP.
  ObjectRecall recall(0.5);
  const std::vector<std::vector<detect::GroundTruthObject>> truth = {
      {gt(1, {0, 0, 20, 20})}, {gt(1, {100, 100, 30, 30})}};
  const std::vector<std::vector<geom::BBox>> reported = {
      {}, {{100, 100, 30, 30}}};
  EXPECT_DOUBLE_EQ(recall.add_frame(truth, reported), 1.0);
}

TEST(ObjectRecall, MissCounted) {
  ObjectRecall recall(0.5);
  const std::vector<std::vector<detect::GroundTruthObject>> truth = {
      {gt(1, {0, 0, 20, 20}), gt(2, {200, 200, 20, 20})}};
  const std::vector<std::vector<geom::BBox>> reported = {{{1, 1, 20, 20}}};
  EXPECT_DOUBLE_EQ(recall.add_frame(truth, reported), 0.5);
  EXPECT_EQ(recall.true_positives(), 1u);
  EXPECT_EQ(recall.ground_truth_total(), 2u);
}

TEST(ObjectRecall, IouThresholdEnforced) {
  ObjectRecall strict(0.9);
  const std::vector<std::vector<detect::GroundTruthObject>> truth = {
      {gt(1, {0, 0, 20, 20})}};
  // Offset box: IoU ~0.5, below the 0.9 bar.
  const std::vector<std::vector<geom::BBox>> reported = {{{5, 5, 20, 20}}};
  EXPECT_DOUBLE_EQ(strict.add_frame(truth, reported), 0.0);
}

TEST(ObjectRecall, EmptyFrameIsPerfect) {
  ObjectRecall recall(0.5);
  EXPECT_DOUBLE_EQ(recall.add_frame({{}, {}}, {{}, {}}), 1.0);
  EXPECT_DOUBLE_EQ(recall.recall(), 1.0);  // vacuous
}

TEST(ObjectRecall, AggregatesAcrossFrames) {
  ObjectRecall recall(0.5);
  const std::vector<std::vector<detect::GroundTruthObject>> truth = {
      {gt(1, {0, 0, 20, 20})}};
  recall.add_frame(truth, {{{0, 0, 20, 20}}});
  recall.add_frame(truth, {{}});
  EXPECT_DOUBLE_EQ(recall.recall(), 0.5);
}

TEST(SlowestCameraLatency, TakesMaxPerFrame) {
  SlowestCameraLatency lat;
  lat.add_frame({10.0, 30.0, 20.0});
  lat.add_frame({50.0, 5.0});
  EXPECT_DOUBLE_EQ(lat.mean_ms(), 40.0);
  EXPECT_DOUBLE_EQ(lat.max_ms(), 50.0);
  EXPECT_EQ(lat.frames(), 2u);
}

}  // namespace
}  // namespace mvs::metrics

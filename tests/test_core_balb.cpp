#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/central_balb.hpp"
#include "util/rng.hpp"

namespace mvs::core {
namespace {

ObjectSpec object(std::uint64_t key, std::vector<int> coverage,
                  geom::SizeClassId size, std::size_t cameras) {
  ObjectSpec obj;
  obj.key = key;
  obj.coverage = std::move(coverage);
  obj.size_class.assign(cameras, size);
  return obj;
}

TEST(CentralBalb, EmptyProblem) {
  MvsProblem p;
  p.cameras = {gpu::jetson_xavier()};
  const Assignment a = central_balb(p);
  EXPECT_TRUE(is_feasible(p, a));
  EXPECT_DOUBLE_EQ(a.system_latency(), 45.0);  // just the full frame
}

TEST(CentralBalb, ExclusiveObjectsDeterministic) {
  MvsProblem p;
  p.cameras = {gpu::jetson_xavier(), gpu::jetson_nano()};
  p.objects = {object(0, {0}, 1, 2), object(1, {1}, 1, 2)};
  const Assignment a = central_balb(p);
  EXPECT_TRUE(a.x[0][0]);
  EXPECT_TRUE(a.x[1][1]);
  EXPECT_TRUE(is_feasible(p, a));
}

TEST(CentralBalb, SharedObjectGoesToFasterCamera) {
  MvsProblem p;
  p.cameras = {gpu::jetson_xavier(), gpu::jetson_nano()};
  p.objects = {object(0, {0, 1}, 1, 2)};
  const Assignment a = central_balb(p);
  // Xavier: 45 + 8 = 53; Nano would be 280 + 35 = 315.
  EXPECT_TRUE(a.x[0][0]);
  EXPECT_FALSE(a.x[1][0]);
  EXPECT_DOUBLE_EQ(a.camera_latency[0], 53.0);
}

TEST(CentralBalb, ExactlyOneTrackerPerObject) {
  util::Rng rng(4);
  MvsProblem p;
  p.cameras = {gpu::jetson_xavier(), gpu::jetson_tx2(), gpu::jetson_nano()};
  for (int j = 0; j < 30; ++j) {
    std::vector<int> coverage;
    for (int c = 0; c < 3; ++c)
      if (rng.bernoulli(0.6)) coverage.push_back(c);
    if (coverage.empty()) coverage.push_back(rng.uniform_int(0, 2));
    p.objects.push_back(object(static_cast<std::uint64_t>(j),
                               std::move(coverage),
                               rng.uniform_int(0, 3), 3));
  }
  const Assignment a = central_balb(p);
  EXPECT_TRUE(is_feasible(p, a));
  for (std::size_t j = 0; j < p.objects.size(); ++j) {
    int trackers = 0;
    for (std::size_t i = 0; i < 3; ++i) trackers += a.x[i][j];
    EXPECT_EQ(trackers, 1);
  }
}

TEST(CentralBalb, IncrementalLatencyMatchesRecompute) {
  util::Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    MvsProblem p;
    p.cameras = {gpu::jetson_xavier(), gpu::jetson_tx2(), gpu::jetson_nano()};
    const int n = 1 + rng.uniform_int(0, 25);
    for (int j = 0; j < n; ++j) {
      std::vector<int> coverage;
      for (int c = 0; c < 3; ++c)
        if (rng.bernoulli(0.5)) coverage.push_back(c);
      if (coverage.empty()) coverage.push_back(0);
      p.objects.push_back(object(static_cast<std::uint64_t>(j),
                                 std::move(coverage),
                                 rng.uniform_int(0, 3), 3));
    }
    const Assignment a = central_balb(p);
    EXPECT_NEAR(a.system_latency(), recomputed_system_latency(p, a), 1e-9);
  }
}

TEST(CentralBalb, BatchReusePrefersIncompleteBatch) {
  // Fig. 7 step 3: an object joins an existing incomplete batch even on a
  // busier camera rather than opening a new batch elsewhere.
  MvsProblem p;
  // Two identical cameras with batch limit 4 at size 0.
  const gpu::DeviceProfile dev("dev", 50.0, {{4, 10.0}, {2, 20.0}});
  p.cameras = {dev, dev};
  // Object 0 exclusive to camera 0 opens a size-0 batch there.
  p.objects = {object(0, {0}, 0, 2), object(1, {0, 1}, 0, 2)};
  const Assignment a = central_balb(p);
  EXPECT_TRUE(a.x[0][1]);  // rides camera 0's incomplete batch
  EXPECT_DOUBLE_EQ(a.camera_latency[0], 60.0);
  EXPECT_DOUBLE_EQ(a.camera_latency[1], 50.0);
}

TEST(CentralBalb, NewBatchPicksMinUpdatedLatency) {
  // Fig. 7 step 4: when a new batch is unavoidable, the camera with the
  // minimum latency AFTER inclusion wins (not minimum current latency).
  MvsProblem p;
  // Camera 0: lower current latency but very slow at size 1.
  const gpu::DeviceProfile slow_large("a", 40.0, {{4, 5.0}, {1, 100.0}});
  const gpu::DeviceProfile fast_large("b", 60.0, {{4, 5.0}, {1, 10.0}});
  p.cameras = {slow_large, fast_large};
  p.objects = {object(0, {0, 1}, 1, 2)};
  const Assignment a = central_balb(p);
  EXPECT_TRUE(a.x[1][0]);  // 60+10=70 beats 40+100=140
}

TEST(CentralBalb, ExclusiveAssignedBeforeFlexible) {
  // A flexible object must not steal capacity needed by an exclusive one:
  // ordering by |C_j| ascending handles it.
  MvsProblem p;
  const gpu::DeviceProfile dev("dev", 10.0, {{1, 30.0}});
  const gpu::DeviceProfile dev2("dev2", 10.0, {{1, 30.0}});
  p.cameras = {dev, dev2};
  p.objects = {object(0, {0, 1}, 0, 2), object(1, {0}, 0, 2)};
  const Assignment a = central_balb(p);
  // Exclusive object 1 -> camera 0; flexible object 0 must avoid camera 0.
  EXPECT_TRUE(a.x[0][1]);
  EXPECT_TRUE(a.x[1][0]);
  EXPECT_DOUBLE_EQ(a.system_latency(), 40.0);
}

TEST(CentralBalb, TieBreakLargerTargetSizeFirst) {
  // Among equal coverage counts, larger sizes are placed first (they are
  // the hardest to fit); verify via the options order enum smoke.
  MvsProblem p;
  const gpu::DeviceProfile dev("dev", 10.0, {{8, 5.0}, {1, 50.0}});
  p.cameras = {dev};
  p.objects = {object(0, {0}, 0, 1), object(1, {0}, 1, 1)};
  const Assignment a = central_balb(p);
  EXPECT_TRUE(is_feasible(p, a));
  EXPECT_DOUBLE_EQ(a.system_latency(), 10.0 + 5.0 + 50.0);
}

TEST(IndependentAssignment, TracksEverywhereVisible) {
  MvsProblem p;
  p.cameras = {gpu::jetson_xavier(), gpu::jetson_tx2()};
  p.objects = {object(0, {0, 1}, 0, 2)};
  const Assignment a = independent_assignment(p);
  EXPECT_TRUE(a.x[0][0]);
  EXPECT_TRUE(a.x[1][0]);
  EXPECT_TRUE(is_feasible(p, a));
}

TEST(StaticPartition, RespectsOwnerAndFallsBack) {
  MvsProblem p;
  p.cameras = {gpu::jetson_xavier(), gpu::jetson_nano()};
  p.objects = {object(0, {0, 1}, 0, 2), object(1, {0}, 0, 2)};
  // Owner of object 1 is camera 1, which cannot see it -> falls back to the
  // most powerful covering camera (xavier).
  const Assignment a = static_partition_assignment(p, {1, 1});
  EXPECT_TRUE(a.x[1][0]);
  EXPECT_TRUE(a.x[0][1]);
  EXPECT_TRUE(is_feasible(p, a));
}

TEST(PowerWeightedOwner, DeterministicAndProportional) {
  const std::vector<gpu::DeviceProfile> cams = {gpu::jetson_xavier(),
                                                gpu::jetson_nano()};
  // Deterministic: same key -> same owner.
  EXPECT_EQ(power_weighted_owner({0, 1}, cams, 777),
            power_weighted_owner({0, 1}, cams, 777));
  // Proportional: xavier (~6.2x nano power) owns most regions.
  int xavier = 0;
  for (std::uint64_t key = 0; key < 2000; ++key)
    xavier += power_weighted_owner({0, 1}, cams, key) == 0;
  EXPECT_GT(xavier, 1600);
  EXPECT_LT(xavier, 1950);
}

TEST(OptimalBruteforce, MatchesHandOptimum) {
  MvsProblem p;
  p.cameras = {gpu::jetson_xavier(), gpu::jetson_tx2()};
  p.objects = {object(0, {0, 1}, 3, 2), object(1, {0, 1}, 3, 2)};
  const Assignment a = optimal_bruteforce(p);
  EXPECT_TRUE(is_feasible(p, a));
  // The idle TX2 still pays its key-frame full inspection (120 ms), which
  // dominates as long as xavier stays below it; both size-3 objects fit one
  // xavier batch (45 + 20 = 65), so the optimum is exactly 120.
  EXPECT_DOUBLE_EQ(a.system_latency(), 120.0);
  // And xavier must not be loaded beyond the TX2 floor.
  const auto latencies = regular_frame_latencies(p, a);
  EXPECT_LE(45.0 + latencies[0], 120.0);
}

/// BALB vs exhaustive optimum on random small instances: always feasible,
/// never better than optimal, and within a modest factor of it.
class BalbOptimality : public ::testing::TestWithParam<int> {};

TEST_P(BalbOptimality, NearOptimal) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 13);
  MvsProblem p;
  p.cameras = {gpu::jetson_xavier(), gpu::jetson_tx2(), gpu::jetson_nano()};
  const int n = 2 + rng.uniform_int(0, 5);
  for (int j = 0; j < n; ++j) {
    std::vector<int> coverage;
    for (int c = 0; c < 3; ++c)
      if (rng.bernoulli(0.6)) coverage.push_back(c);
    if (coverage.empty()) coverage.push_back(rng.uniform_int(0, 2));
    p.objects.push_back(object(static_cast<std::uint64_t>(j),
                               std::move(coverage), rng.uniform_int(0, 3), 3));
  }
  const Assignment balb = central_balb(p);
  const Assignment best = optimal_bruteforce(p);
  EXPECT_TRUE(is_feasible(p, balb));
  const double balb_latency = recomputed_system_latency(p, balb);
  const double optimal_latency = recomputed_system_latency(p, best);
  EXPECT_GE(balb_latency, optimal_latency - 1e-9);
  EXPECT_LE(balb_latency, 1.7 * optimal_latency);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalbOptimality, ::testing::Range(0, 25));

TEST(CentralBalbOptions, BatchAwareNoWorseOnBatchableLoad) {
  // Many same-size shared objects: batch awareness is exactly what saves
  // latency.
  MvsProblem p;
  const gpu::DeviceProfile dev("a", 20.0, {{8, 10.0}});
  const gpu::DeviceProfile dev2("b", 20.0, {{8, 10.0}});
  p.cameras = {dev, dev2};
  for (int j = 0; j < 8; ++j)
    p.objects.push_back(object(static_cast<std::uint64_t>(j), {0, 1}, 0, 2));
  CentralBalbOptions with;
  CentralBalbOptions without;
  without.batch_aware = false;
  const double aware = recomputed_system_latency(p, central_balb(p, with));
  const double naive = recomputed_system_latency(p, central_balb(p, without));
  EXPECT_LE(aware, naive);
}

TEST(CentralBalbOptions, OrderingVariantsAreFeasible) {
  util::Rng rng(31);
  MvsProblem p;
  p.cameras = {gpu::jetson_xavier(), gpu::jetson_nano()};
  for (int j = 0; j < 12; ++j) {
    std::vector<int> coverage = rng.bernoulli(0.5)
                                    ? std::vector<int>{0, 1}
                                    : std::vector<int>{rng.uniform_int(0, 1)};
    p.objects.push_back(object(static_cast<std::uint64_t>(j),
                               std::move(coverage), rng.uniform_int(0, 3), 2));
  }
  for (const auto order : {CentralBalbOptions::Order::kCoverageAscending,
                           CentralBalbOptions::Order::kCoverageDescending,
                           CentralBalbOptions::Order::kInputOrder}) {
    CentralBalbOptions options;
    options.order = order;
    EXPECT_TRUE(is_feasible(p, central_balb(p, options)));
  }
}

}  // namespace
}  // namespace mvs::core

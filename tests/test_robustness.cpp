// Failure-injection and degraded-input robustness: the system must stay
// well-behaved (no crashes, graceful metric degradation, parseable output)
// when its inputs are much worse than the calibrated defaults.

#include <gtest/gtest.h>

#include "assoc/association.hpp"
#include "detect/simulated_detector.hpp"
#include "net/messages.hpp"
#include "runtime/pipeline.hpp"
#include "sim/dataset.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace mvs {
namespace {

TEST(Robustness, DetectorWithSevereMissRateStillRuns) {
  detect::SimulatedDetector::Config cfg;
  cfg.base_miss_rate = 0.6;  // detector misses most objects
  detect::SimulatedDetector detector(cfg);
  util::Rng rng(1);
  detect::GroundTruthObject obj;
  obj.id = 1;
  obj.box = {100, 100, 60, 60};
  int hits = 0;
  for (int t = 0; t < 200; ++t)
    for (const auto& d : detector.detect_full({obj}, 1280, 704, rng))
      hits += d.truth_id == 1;
  EXPECT_GT(hits, 20);   // still detects sometimes
  EXPECT_LT(hits, 140);  // but clearly degraded
}

TEST(Robustness, AssociatorWithTinyTrainingSetIsSafe) {
  sim::ScenarioPlayer player(sim::make_s2(9), 60.0);
  const auto tiny = player.take(3);  // nearly no supervision
  assoc::CrossCameraAssociator associator({{1280, 704}, {1280, 704}});
  associator.train(tiny);
  EXPECT_TRUE(associator.trained());
  // Association of arbitrary detections must not crash nor lose boxes.
  std::vector<std::vector<detect::Detection>> dets(2);
  detect::Detection d;
  d.box = {400, 300, 50, 40};
  dets[0].push_back(d);
  dets[1].push_back(d);
  const auto objects = associator.associate(dets);
  std::size_t accounted = 0;
  for (const auto& obj : objects)
    for (int det_index : obj.det_index) accounted += (det_index >= 0);
  EXPECT_EQ(accounted, 2u);
}

TEST(Robustness, PipelineSurvivesVeryShortTrainingSplit) {
  runtime::PipelineConfig cfg;
  cfg.policy = runtime::Policy::kBalb;
  cfg.horizon_frames = 10;
  cfg.training_frames = 5;  // association models nearly untrained
  cfg.seed = 2;
  runtime::Pipeline pipeline("S2", cfg);
  const auto result = pipeline.run(30);
  EXPECT_EQ(result.frames.size(), 30u);
  EXPECT_GE(result.object_recall, 0.0);  // degraded but defined
}

TEST(Robustness, PipelineSurvivesHorizonOfOne) {
  // T = 1: every frame is a key frame; the distributed stage never runs.
  runtime::PipelineConfig cfg;
  cfg.policy = runtime::Policy::kBalb;
  cfg.horizon_frames = 1;
  cfg.training_frames = 80;
  cfg.seed = 3;
  runtime::Pipeline pipeline("S2", cfg);
  const auto result = pipeline.run(12);
  for (const auto& frame : result.frames) EXPECT_TRUE(frame.key_frame);
  // All-key-frames means Full-like latency on the slowest device.
  EXPECT_NEAR(result.mean_slowest_infer_ms(), 280.0, 1e-9);
  EXPECT_GT(result.object_recall, 0.8);
}

TEST(Robustness, MessageDecoderSurvivesRandomBytes) {
  util::Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> junk(rng.index(200) + 1);
    for (auto& b : junk)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    // Must never crash; may occasionally parse tiny degenerate messages.
    (void)net::DetectionListMsg::decode(junk);
    (void)net::AssignmentMsg::decode(junk);
  }
  SUCCEED();
}

TEST(Robustness, OcclusionHeavySceneStillTracked) {
  // Occlusion enabled on the busiest scenario: recall drops only modestly
  // versus the occlusion-free ground truth (objects reappear and the
  // tracker re-acquires them via new-region detection).
  sim::Scenario scenario = sim::make_s3(6);
  scenario.occlusion.enabled = true;
  sim::ScenarioPlayer player(std::move(scenario), 60.0);
  std::size_t visible = 0;
  for (int f = 0; f < 50; ++f)
    for (const auto& cam : player.next().per_camera) visible += cam.size();
  EXPECT_GT(visible, 50u);  // the scene does not collapse
}

TEST(Robustness, ZeroTrafficScenarioIsHandled) {
  // A world with no arrivals: recall is vacuous (1.0) and latency is just
  // the key-frame cost.
  runtime::PipelineConfig cfg;
  cfg.policy = runtime::Policy::kBalb;
  cfg.horizon_frames = 10;
  cfg.training_frames = 30;
  cfg.seed = 977;  // any seed; S2 is sparse enough to hit empty frames
  runtime::Pipeline pipeline("S2", cfg);
  const auto result = pipeline.run(20);
  for (const auto& frame : result.frames) {
    if (frame.gt_objects == 0) EXPECT_DOUBLE_EQ(frame.frame_recall, 1.0);
  }
}

}  // namespace
}  // namespace mvs

#include <gtest/gtest.h>

#include "runtime/config.hpp"
#include "util/args.hpp"
#include "util/json.hpp"

namespace mvs {
namespace {

using util::Json;

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.5")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("-17")->as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParseNested) {
  const auto doc = Json::parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": "x"}, "e": null})");
  ASSERT_TRUE(doc.has_value());
  const Json* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_TRUE(a->as_array()[2].find("b")->as_bool());
  EXPECT_EQ(doc->find("c")->find("d")->as_string(), "x");
  EXPECT_TRUE(doc->find("e")->is_null());
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Json, StringEscapes) {
  const auto doc = Json::parse(R"("a\nb\t\"q\" \\ A")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "a\nb\t\"q\" \\ A");
}

TEST(Json, MalformedInputsRejected) {
  std::string error;
  EXPECT_FALSE(Json::parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("12 34").has_value());  // trailing tokens
  EXPECT_FALSE(Json::parse("nul").has_value());
}

TEST(Json, WhitespaceTolerant) {
  EXPECT_TRUE(Json::parse("  { \"a\" :\n[ 1 , 2 ]\t} ").has_value());
}

TEST(Json, DumpRoundTrips) {
  const std::string text =
      R"({"arr":[1,2.5,"s"],"flag":true,"n":null,"nested":{"x":-3}})";
  const auto doc = Json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const auto again = Json::parse(doc->dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->dump(), doc->dump());
}

TEST(Json, TypedGettersWithDefaults) {
  const auto doc = Json::parse(R"({"a": 2, "b": "s", "c": true})");
  EXPECT_DOUBLE_EQ(doc->number_or("a", 0.0), 2.0);
  EXPECT_DOUBLE_EQ(doc->number_or("missing", 7.0), 7.0);
  EXPECT_DOUBLE_EQ(doc->number_or("b", 7.0), 7.0);  // wrong type -> default
  EXPECT_EQ(doc->string_or("b", ""), "s");
  EXPECT_TRUE(doc->bool_or("c", false));
}

TEST(Args, FlagsValuesPositional) {
  const char* argv[] = {"prog", "--verbose", "--frames", "100",
                        "--policy=balb", "S1", "extra"};
  const auto args = util::Args::parse(7, argv, {"verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get_or("policy", ""), "balb");
  EXPECT_EQ(args.int_or("frames", 0), 100);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "S1");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Args, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const auto args = util::Args::parse(1, argv);
  EXPECT_FALSE(args.has("x"));
  EXPECT_EQ(args.get_or("x", "d"), "d");
  EXPECT_DOUBLE_EQ(args.number_or("x", 1.5), 1.5);
}

TEST(ParsePolicy, AllNames) {
  using runtime::Policy;
  EXPECT_EQ(runtime::parse_policy("full"), Policy::kFull);
  EXPECT_EQ(runtime::parse_policy("BALB"), Policy::kBalb);
  EXPECT_EQ(runtime::parse_policy("balb-ind"), Policy::kBalbInd);
  EXPECT_EQ(runtime::parse_policy("balb-cen"), Policy::kBalbCen);
  EXPECT_EQ(runtime::parse_policy("sp"), Policy::kStaticPartition);
  EXPECT_EQ(runtime::parse_policy("static"), Policy::kStaticPartition);
  EXPECT_FALSE(runtime::parse_policy("bogus").has_value());
}

TEST(RunConfig, ParseFullDocument) {
  const std::string text = R"({
    "scenario": "S2", "frames": 50,
    "pipeline": {"policy": "sp", "horizon_frames": 5,
                 "training_frames": 80, "seed": 9, "recall_iou": 0.5}
  })";
  const auto config = runtime::parse_run_config(text);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->scenario, "S2");
  EXPECT_EQ(config->frames, 50);
  EXPECT_EQ(config->pipeline.policy, runtime::Policy::kStaticPartition);
  EXPECT_EQ(config->pipeline.horizon_frames, 5);
  EXPECT_EQ(config->pipeline.seed, 9u);
  EXPECT_DOUBLE_EQ(config->pipeline.recall_iou, 0.5);
}

TEST(RunConfig, DefaultsApplied) {
  const auto config = runtime::parse_run_config("{}");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->scenario, "S1");
  EXPECT_EQ(config->pipeline.policy, runtime::Policy::kBalb);
}

TEST(RunConfig, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(runtime::parse_run_config("{bad", &error).has_value());
  EXPECT_FALSE(runtime::parse_run_config(R"({"scenario":"S9"})", &error)
                   .has_value());
  EXPECT_NE(error.find("S9"), std::string::npos);
  EXPECT_FALSE(
      runtime::parse_run_config(R"({"pipeline":{"policy":"zzz"}})", &error)
          .has_value());
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"pipeline":{"horizon_frames":0}})", &error)
                   .has_value());
}

TEST(RunConfig, DumpRoundTrips) {
  runtime::RunConfig config;
  config.scenario = "S3";
  config.frames = 77;
  config.pipeline.policy = runtime::Policy::kBalbCen;
  config.pipeline.horizon_frames = 20;
  config.pipeline.seed = 1234;
  const auto again = runtime::parse_run_config(dump_run_config(config));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->scenario, "S3");
  EXPECT_EQ(again->frames, 77);
  EXPECT_EQ(again->pipeline.policy, runtime::Policy::kBalbCen);
  EXPECT_EQ(again->pipeline.horizon_frames, 20);
  EXPECT_EQ(again->pipeline.seed, 1234u);
}

}  // namespace
}  // namespace mvs

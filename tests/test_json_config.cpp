#include <gtest/gtest.h>

#include "policy/policy.hpp"
#include "runtime/config.hpp"
#include "sim/scenario.hpp"
#include "util/args.hpp"
#include "util/json.hpp"

namespace mvs {
namespace {

using util::Json;

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.5")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("-17")->as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParseNested) {
  const auto doc = Json::parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": "x"}, "e": null})");
  ASSERT_TRUE(doc.has_value());
  const Json* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_TRUE(a->as_array()[2].find("b")->as_bool());
  EXPECT_EQ(doc->find("c")->find("d")->as_string(), "x");
  EXPECT_TRUE(doc->find("e")->is_null());
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Json, StringEscapes) {
  const auto doc = Json::parse(R"("a\nb\t\"q\" \\ A")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "a\nb\t\"q\" \\ A");
}

TEST(Json, ControlCharacterEscapesRoundTrip) {
  // Every control character must survive dump() -> parse(): \b and \f get
  // their short escapes, the rest go out as \u00XX.
  std::string raw;
  for (char c = 1; c < 0x20; ++c) raw.push_back(c);
  raw += "\b\f plain";
  const std::string dumped = Json(raw).dump();
  EXPECT_EQ(dumped.find('\n'), std::string::npos);  // no literal controls
  EXPECT_NE(dumped.find("\\b"), std::string::npos);
  EXPECT_NE(dumped.find("\\f"), std::string::npos);
  EXPECT_NE(dumped.find("\\u001f"), std::string::npos);
  const auto back = Json::parse(dumped);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->as_string(), raw);
}

TEST(Json, MalformedInputsRejected) {
  std::string error;
  EXPECT_FALSE(Json::parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("12 34").has_value());  // trailing tokens
  EXPECT_FALSE(Json::parse("nul").has_value());
}

TEST(Json, WhitespaceTolerant) {
  EXPECT_TRUE(Json::parse("  { \"a\" :\n[ 1 , 2 ]\t} ").has_value());
}

TEST(Json, DumpRoundTrips) {
  const std::string text =
      R"({"arr":[1,2.5,"s"],"flag":true,"n":null,"nested":{"x":-3}})";
  const auto doc = Json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const auto again = Json::parse(doc->dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->dump(), doc->dump());
}

TEST(Json, TypedGettersWithDefaults) {
  const auto doc = Json::parse(R"({"a": 2, "b": "s", "c": true})");
  EXPECT_DOUBLE_EQ(doc->number_or("a", 0.0), 2.0);
  EXPECT_DOUBLE_EQ(doc->number_or("missing", 7.0), 7.0);
  EXPECT_DOUBLE_EQ(doc->number_or("b", 7.0), 7.0);  // wrong type -> default
  EXPECT_EQ(doc->string_or("b", ""), "s");
  EXPECT_TRUE(doc->bool_or("c", false));
}

TEST(Args, FlagsValuesPositional) {
  const char* argv[] = {"prog", "--verbose", "--frames", "100",
                        "--policy=balb", "S1", "extra"};
  const auto args = util::Args::parse(7, argv, {"verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get_or("policy", ""), "balb");
  EXPECT_EQ(args.int_or("frames", 0), 100);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "S1");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Args, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const auto args = util::Args::parse(1, argv);
  EXPECT_FALSE(args.has("x"));
  EXPECT_EQ(args.get_or("x", "d"), "d");
  EXPECT_DOUBLE_EQ(args.number_or("x", 1.5), 1.5);
}

TEST(ParsePolicy, AllNames) {
  using runtime::Policy;
  EXPECT_EQ(runtime::parse_policy("full"), Policy::kFull);
  EXPECT_EQ(runtime::parse_policy("BALB"), Policy::kBalb);
  EXPECT_EQ(runtime::parse_policy("balb-ind"), Policy::kBalbInd);
  EXPECT_EQ(runtime::parse_policy("balb-cen"), Policy::kBalbCen);
  EXPECT_EQ(runtime::parse_policy("sp"), Policy::kStaticPartition);
  EXPECT_EQ(runtime::parse_policy("static"), Policy::kStaticPartition);
  EXPECT_FALSE(runtime::parse_policy("bogus").has_value());
}

TEST(RunConfig, ParseFullDocument) {
  const std::string text = R"({
    "scenario": "S2", "frames": 50,
    "pipeline": {"policy": "sp", "horizon_frames": 5,
                 "training_frames": 80, "seed": 9, "recall_iou": 0.5}
  })";
  const auto config = runtime::parse_run_config(text);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->scenario, "S2");
  EXPECT_EQ(config->frames, 50);
  EXPECT_EQ(config->pipeline.policy, runtime::Policy::kStaticPartition);
  EXPECT_EQ(config->pipeline.horizon_frames, 5);
  EXPECT_EQ(config->pipeline.seed, 9u);
  EXPECT_DOUBLE_EQ(config->pipeline.recall_iou, 0.5);
}

TEST(RunConfig, DefaultsApplied) {
  const auto config = runtime::parse_run_config("{}");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->scenario, "S1");
  EXPECT_EQ(config->pipeline.policy, runtime::Policy::kBalb);
}

TEST(RunConfig, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(runtime::parse_run_config("{bad", &error).has_value());
  EXPECT_FALSE(runtime::parse_run_config(R"({"scenario":"S9"})", &error)
                   .has_value());
  EXPECT_NE(error.find("S9"), std::string::npos);
  EXPECT_FALSE(
      runtime::parse_run_config(R"({"pipeline":{"policy":"zzz"}})", &error)
          .has_value());
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"pipeline":{"horizon_frames":0}})", &error)
                   .has_value());
}

TEST(RunConfig, DumpRoundTrips) {
  runtime::RunConfig config;
  config.scenario = "S3";
  config.frames = 77;
  config.pipeline.policy = runtime::Policy::kBalbCen;
  config.pipeline.horizon_frames = 20;
  config.pipeline.seed = 1234;
  const auto again = runtime::parse_run_config(dump_run_config(config));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->scenario, "S3");
  EXPECT_EQ(again->frames, 77);
  EXPECT_EQ(again->pipeline.policy, runtime::Policy::kBalbCen);
  EXPECT_EQ(again->pipeline.horizon_frames, 20);
  EXPECT_EQ(again->pipeline.seed, 1234u);
}

TEST(RunConfig, PolicyBlockParseAndRoundTrip) {
  // Defaults: fixed kind, no model, no trace.
  const auto defaults = runtime::parse_run_config("{}");
  ASSERT_TRUE(defaults.has_value());
  EXPECT_EQ(defaults->pipeline.frame_policy.kind, policy::PolicyKind::kFixed);
  EXPECT_TRUE(defaults->pipeline.frame_policy.model_json.empty());
  EXPECT_TRUE(defaults->pipeline.frame_policy.feature_trace.empty());

  const auto config = runtime::parse_run_config(R"({
    "policy": {"mode": "heuristic", "staleness_limit": 9,
               "min_track_frames": 2, "drift_px": 6.5, "conf_floor": 0.4,
               "motion_frac": 0.02, "churn_hi": 0.5, "hysteresis": 0.25,
               "expected_detect_ratio": 0.4, "feature_trace": "rows.jsonl"}
  })");
  ASSERT_TRUE(config.has_value());
  const policy::PolicyConfig& pc = config->pipeline.frame_policy;
  EXPECT_EQ(pc.kind, policy::PolicyKind::kHeuristic);
  EXPECT_EQ(pc.staleness_limit, 9);
  EXPECT_EQ(pc.min_track_frames, 2);
  EXPECT_DOUBLE_EQ(pc.drift_px, 6.5);
  EXPECT_DOUBLE_EQ(pc.conf_floor, 0.4);
  EXPECT_DOUBLE_EQ(pc.motion_frac, 0.02);
  EXPECT_DOUBLE_EQ(pc.churn_hi, 0.5);
  EXPECT_DOUBLE_EQ(pc.hysteresis, 0.25);
  EXPECT_DOUBLE_EQ(pc.expected_detect_ratio, 0.4);
  EXPECT_EQ(pc.feature_trace, "rows.jsonl");

  const auto again = runtime::parse_run_config(dump_run_config(*config));
  ASSERT_TRUE(again.has_value());
  const policy::PolicyConfig& rc = again->pipeline.frame_policy;
  EXPECT_EQ(rc.kind, policy::PolicyKind::kHeuristic);
  EXPECT_EQ(rc.staleness_limit, 9);
  EXPECT_EQ(rc.min_track_frames, 2);
  EXPECT_DOUBLE_EQ(rc.drift_px, 6.5);
  EXPECT_DOUBLE_EQ(rc.hysteresis, 0.25);
  EXPECT_DOUBLE_EQ(rc.expected_detect_ratio, 0.4);
  EXPECT_EQ(rc.feature_trace, "rows.jsonl");
}

TEST(RunConfig, PolicyBlockUnknownKeyIsHardError) {
  // Policy knobs trade GPU time against recall; a typo must not silently
  // fall back to a default (unlike the legacy lenient blocks).
  std::string error;
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"policy": {"mode": "heuristic", "drift_pix": 4}})",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("unknown policy key"), std::string::npos);
  EXPECT_NE(error.find("drift_pix"), std::string::npos);

  // Must be an object, mode must parse, ranges are enforced.
  EXPECT_FALSE(
      runtime::parse_run_config(R"({"policy": 3})", &error).has_value());
  EXPECT_NE(error.find("policy"), std::string::npos);
  EXPECT_FALSE(
      runtime::parse_run_config(R"({"policy": {"mode": "psychic"}})", &error)
          .has_value());
  EXPECT_NE(error.find("psychic"), std::string::npos);
  EXPECT_FALSE(
      runtime::parse_run_config(R"({"policy": {"hysteresis": 1.5}})", &error)
          .has_value());
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"policy": {"staleness_limit": 2,
                                  "min_track_frames": 2}})",
                   &error)
                   .has_value());
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"policy": {"expected_detect_ratio": 0}})", &error)
                   .has_value());
}

TEST(RunConfig, PairedRngParsesAndRoundTrips) {
  const auto defaults = runtime::parse_run_config("{}");
  ASSERT_TRUE(defaults.has_value());
  EXPECT_FALSE(defaults->pipeline.paired_rng);  // default preserves bit-identity

  const auto config = runtime::parse_run_config(
      R"({"pipeline": {"paired_rng": true}})");
  ASSERT_TRUE(config.has_value());
  EXPECT_TRUE(config->pipeline.paired_rng);
  const auto again = runtime::parse_run_config(dump_run_config(*config));
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->pipeline.paired_rng);
}

TEST(RunConfig, ObsBlockParseAndRoundTrip) {
  // Defaults: observability off, no export paths.
  const auto defaults = runtime::parse_run_config("{}");
  ASSERT_TRUE(defaults.has_value());
  EXPECT_FALSE(defaults->obs.enabled);
  EXPECT_TRUE(defaults->obs.chrome_trace.empty());
  EXPECT_TRUE(defaults->obs.metrics_json.empty());

  const auto config = runtime::parse_run_config(R"({
    "obs": {"enabled": true, "chrome_trace": "trace.json",
            "metrics_json": "metrics.json"}
  })");
  ASSERT_TRUE(config.has_value());
  EXPECT_TRUE(config->obs.enabled);
  EXPECT_EQ(config->obs.chrome_trace, "trace.json");
  EXPECT_EQ(config->obs.metrics_json, "metrics.json");

  const auto again = runtime::parse_run_config(dump_run_config(*config));
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->obs.enabled);
  EXPECT_EQ(again->obs.chrome_trace, "trace.json");
  EXPECT_EQ(again->obs.metrics_json, "metrics.json");
}

TEST(RunConfig, ObsBlockMustBeObject) {
  std::string error;
  EXPECT_FALSE(runtime::parse_run_config(R"({"obs": true})", &error)
                   .has_value());
  EXPECT_NE(error.find("obs"), std::string::npos);
}

TEST(FleetRunConfig, ParseFleetBlock) {
  const std::string text = R"({
    "scenario": "S2", "frames": 60,
    "pipeline": {"policy": "balb", "horizon_frames": 5, "seed": 3},
    "fleet": {
      "slo_ms": 120, "dispatch": "weighted", "threads": 2,
      "readmit_interval": 7, "readmit_low_water": 0.6,
      "readmit_high_water": 0.85, "allow_split": true,
      "shards": 4, "shard_capacity": 256,
      "rebalance_interval": 25, "rebalance_high_water": 1.5,
      "device_scale": [{"class": "nano", "delta": 2}],
      "sessions": [
        {"name": "a", "weight": 2, "fps": 15, "slo_ms": 90,
         "faults": {"loss_rate": 0.05, "jitter_ms": 1.5,
                    "dropouts": [{"camera": 1, "from": 10, "to": 20}]}},
        {"name": "b", "scenario": "S3", "synthetic": true,
         "pipeline": {"policy": "sp", "horizon_frames": 8},
         "policy": {"mode": "heuristic", "staleness_limit": 6}}
      ]
    }
  })";
  const auto config = runtime::parse_run_config(text);
  ASSERT_TRUE(config.has_value());
  ASSERT_TRUE(config->fleet.has_value());
  const runtime::FleetRunConfig& fleet = *config->fleet;
  EXPECT_DOUBLE_EQ(fleet.slo_ms, 120.0);
  EXPECT_EQ(fleet.dispatch, "weighted");
  EXPECT_EQ(fleet.threads, 2);
  EXPECT_EQ(fleet.readmit_interval, 7);
  EXPECT_DOUBLE_EQ(fleet.readmit_low_water, 0.6);
  EXPECT_DOUBLE_EQ(fleet.readmit_high_water, 0.85);
  EXPECT_TRUE(fleet.allow_split);
  EXPECT_EQ(fleet.shards, 4);
  EXPECT_EQ(fleet.shard_capacity, 256);
  EXPECT_EQ(fleet.rebalance_interval, 25);
  EXPECT_DOUBLE_EQ(fleet.rebalance_high_water, 1.5);
  ASSERT_EQ(fleet.device_scale.size(), 1u);
  EXPECT_EQ(fleet.device_scale[0].device_class, "nano");
  EXPECT_EQ(fleet.device_scale[0].delta, 2);

  ASSERT_EQ(fleet.sessions.size(), 2u);
  const runtime::FleetSessionSpec& a = fleet.sessions[0];
  EXPECT_EQ(a.name, "a");
  // Sessions inherit the document's top-level scenario and pipeline.
  EXPECT_EQ(a.scenario, "S2");
  EXPECT_EQ(a.pipeline.horizon_frames, 5);
  EXPECT_EQ(a.pipeline.seed, 3u);
  EXPECT_DOUBLE_EQ(a.weight, 2.0);
  EXPECT_EQ(a.fps, 15);
  EXPECT_DOUBLE_EQ(a.slo_ms, 90.0);
  ASSERT_TRUE(a.faults.has_value());
  EXPECT_DOUBLE_EQ(a.faults->loss_rate, 0.05);
  EXPECT_DOUBLE_EQ(a.faults->jitter_ms, 1.5);
  ASSERT_EQ(a.faults->dropouts.size(), 1u);
  EXPECT_EQ(a.faults->dropouts[0].camera, 1);
  EXPECT_EQ(a.faults->dropouts[0].from_frame, 10);
  EXPECT_EQ(a.faults->dropouts[0].to_frame, 20);

  const runtime::FleetSessionSpec& b = fleet.sessions[1];
  EXPECT_EQ(b.scenario, "S3");  // per-session override wins
  EXPECT_EQ(b.pipeline.policy, runtime::Policy::kStaticPartition);
  EXPECT_EQ(b.pipeline.horizon_frames, 8);
  // Sessions may carry their own detect-or-track policy block; session "a"
  // without one inherits the document default (fixed).
  EXPECT_EQ(b.pipeline.frame_policy.kind, policy::PolicyKind::kHeuristic);
  EXPECT_EQ(b.pipeline.frame_policy.staleness_limit, 6);
  EXPECT_EQ(a.pipeline.frame_policy.kind, policy::PolicyKind::kFixed);
  EXPECT_EQ(b.fps, 0);
  EXPECT_DOUBLE_EQ(b.slo_ms, -1.0);
  EXPECT_FALSE(b.faults.has_value());
  EXPECT_TRUE(b.synthetic);
  EXPECT_FALSE(a.synthetic);
}

TEST(FleetRunConfig, RejectsBadFleetInput) {
  std::string error;
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"fleet": {"sessions": [{"scenario": "S9"}]}})", &error)
                   .has_value());
  EXPECT_NE(error.find("S9"), std::string::npos);
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"fleet": {"sessions": [{"weight": 0}]}})", &error)
                   .has_value());
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"fleet": {"readmit_low_water": 0.9,
                                 "readmit_high_water": 0.5}})", &error)
                   .has_value());
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"fleet": {"device_scale": [{"delta": 1}]}})", &error)
                   .has_value());
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"fleet": {"sessions": [{"faults": {"loss_rate": 2}}]}})",
                   &error)
                   .has_value());
  // Sharding knobs: out-of-range values and misspelled keys are hard errors.
  EXPECT_FALSE(runtime::parse_run_config(R"({"fleet": {"shards": 0}})", &error)
                   .has_value());
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"fleet": {"rebalance_high_water": 1.0}})", &error)
                   .has_value());
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"fleet": {"rebalance_interval": -1}})", &error)
                   .has_value());
  EXPECT_FALSE(
      runtime::parse_run_config(R"({"fleet": {"shardz": 2}})", &error)
          .has_value());
  EXPECT_NE(error.find("shardz"), std::string::npos);
}

TEST(FleetRunConfig, DumpRoundTrips) {
  runtime::RunConfig config;
  config.scenario = "S1";
  runtime::FleetRunConfig fleet;
  fleet.slo_ms = 95.5;
  fleet.dispatch = "weighted";
  fleet.allow_degrade = false;
  fleet.readmit_interval = 4;
  fleet.readmit_low_water = 0.55;
  fleet.readmit_high_water = 0.8;
  fleet.allow_split = true;
  fleet.shards = 3;
  fleet.shard_capacity = 64;
  fleet.rebalance_interval = 15;
  fleet.rebalance_high_water = 1.4;
  fleet.device_scale.push_back({"xavier", -1});
  runtime::FleetSessionSpec spec;
  spec.name = "cam-east";
  spec.scenario = "S2";
  spec.weight = 3.0;
  spec.fps = 30;
  spec.slo_ms = 70.0;
  spec.pipeline.policy = runtime::Policy::kBalbInd;
  spec.synthetic = true;
  netsim::FaultConfig faults;
  faults.loss_rate = 0.1;
  faults.max_retries = 5;
  spec.faults = faults;
  fleet.sessions.push_back(spec);
  config.fleet = fleet;

  const auto again = runtime::parse_run_config(dump_run_config(config));
  ASSERT_TRUE(again.has_value());
  ASSERT_TRUE(again->fleet.has_value());
  EXPECT_DOUBLE_EQ(again->fleet->slo_ms, 95.5);
  EXPECT_EQ(again->fleet->dispatch, "weighted");
  EXPECT_FALSE(again->fleet->allow_degrade);
  EXPECT_EQ(again->fleet->readmit_interval, 4);
  EXPECT_DOUBLE_EQ(again->fleet->readmit_low_water, 0.55);
  EXPECT_DOUBLE_EQ(again->fleet->readmit_high_water, 0.8);
  EXPECT_TRUE(again->fleet->allow_split);
  EXPECT_EQ(again->fleet->shards, 3);
  EXPECT_EQ(again->fleet->shard_capacity, 64);
  EXPECT_EQ(again->fleet->rebalance_interval, 15);
  EXPECT_DOUBLE_EQ(again->fleet->rebalance_high_water, 1.4);
  ASSERT_EQ(again->fleet->device_scale.size(), 1u);
  EXPECT_EQ(again->fleet->device_scale[0].device_class, "xavier");
  EXPECT_EQ(again->fleet->device_scale[0].delta, -1);
  ASSERT_EQ(again->fleet->sessions.size(), 1u);
  const runtime::FleetSessionSpec& s = again->fleet->sessions[0];
  EXPECT_EQ(s.name, "cam-east");
  EXPECT_EQ(s.scenario, "S2");
  EXPECT_DOUBLE_EQ(s.weight, 3.0);
  EXPECT_EQ(s.fps, 30);
  EXPECT_DOUBLE_EQ(s.slo_ms, 70.0);
  EXPECT_EQ(s.pipeline.policy, runtime::Policy::kBalbInd);
  EXPECT_TRUE(s.synthetic);
  ASSERT_TRUE(s.faults.has_value());
  EXPECT_DOUBLE_EQ(s.faults->loss_rate, 0.1);
  EXPECT_EQ(s.faults->max_retries, 5);
}

TEST(FleetRunConfig, PlainDocumentHasNoFleet) {
  const auto config = runtime::parse_run_config(R"({"scenario": "S1"})");
  ASSERT_TRUE(config.has_value());
  EXPECT_FALSE(config->fleet.has_value());
  // And a fleet-free config dumps without a fleet block.
  const auto doc = util::Json::parse(dump_run_config(*config));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("fleet"), nullptr);
}

TEST(RtRunConfig, DefaultsAreInert) {
  const auto config = runtime::parse_run_config("{}");
  ASSERT_TRUE(config.has_value());
  EXPECT_FALSE(config->rt.paced);
  EXPECT_DOUBLE_EQ(config->rt.deadline_ms, 100.0);
  EXPECT_EQ(config->rt.late_policy, runtime::LatePolicy::kSupersede);
}

TEST(RtRunConfig, ParseAndRoundTrip) {
  const auto config = runtime::parse_run_config(R"({
    "rt": {"paced": true, "frame_period_ms": 50, "deadline_ms": 80,
           "late_policy": "drop", "arrival_jitter_ms": 4.5,
           "fixed_overhead_ms": 2.0}
  })");
  ASSERT_TRUE(config.has_value());
  EXPECT_TRUE(config->rt.paced);
  EXPECT_DOUBLE_EQ(config->rt.frame_period_ms, 50.0);
  EXPECT_DOUBLE_EQ(config->rt.deadline_ms, 80.0);
  EXPECT_EQ(config->rt.late_policy, runtime::LatePolicy::kDrop);
  EXPECT_DOUBLE_EQ(config->rt.arrival_jitter_ms, 4.5);
  EXPECT_DOUBLE_EQ(config->rt.fixed_overhead_ms, 2.0);

  const auto again = runtime::parse_run_config(dump_run_config(*config));
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->rt.paced);
  EXPECT_DOUBLE_EQ(again->rt.frame_period_ms, 50.0);
  EXPECT_DOUBLE_EQ(again->rt.deadline_ms, 80.0);
  EXPECT_EQ(again->rt.late_policy, runtime::LatePolicy::kDrop);
  EXPECT_DOUBLE_EQ(again->rt.arrival_jitter_ms, 4.5);
  EXPECT_DOUBLE_EQ(again->rt.fixed_overhead_ms, 2.0);
}

TEST(RtRunConfig, UnknownKeyAndBadValuesAreHardErrors) {
  std::string error;
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"rt": {"paced": true, "deadline": 80}})", &error)
                   .has_value());
  EXPECT_NE(error.find("unknown rt key"), std::string::npos);
  EXPECT_NE(error.find("deadline"), std::string::npos);

  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"rt": {"late_policy": "yolo"}})", &error)
                   .has_value());
  EXPECT_NE(error.find("late_policy"), std::string::npos);

  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"rt": {"arrival_jitter_ms": -1}})", &error)
                   .has_value());
  EXPECT_FALSE(runtime::parse_run_config(R"({"rt": 3})", &error).has_value());
}

TEST(RtRunConfig, LatePolicyNames) {
  EXPECT_EQ(runtime::parse_late_policy("drop"), runtime::LatePolicy::kDrop);
  EXPECT_EQ(runtime::parse_late_policy("Supersede"),
            runtime::LatePolicy::kSupersede);
  EXPECT_EQ(runtime::parse_late_policy("finish-late"),
            runtime::LatePolicy::kFinishLate);
  EXPECT_FALSE(runtime::parse_late_policy("never").has_value());
  EXPECT_STREQ(runtime::to_string(runtime::LatePolicy::kDrop), "drop");
  EXPECT_STREQ(runtime::to_string(runtime::LatePolicy::kSupersede),
               "supersede");
  EXPECT_STREQ(runtime::to_string(runtime::LatePolicy::kFinishLate),
               "finish-late");
}

TEST(CityRunConfig, BlockGeneratesScenarioNameAndRoundTrips) {
  const auto config = runtime::parse_run_config(R"({
    "city": {"cameras": 50, "rate_per_s": 0.04, "flash_at_s": 30,
             "day_night": true}
  })");
  ASSERT_TRUE(config.has_value());
  const auto city = sim::parse_city_name(config->scenario);
  ASSERT_TRUE(city.has_value()) << config->scenario;
  EXPECT_EQ(city->cameras, 50);
  EXPECT_DOUBLE_EQ(city->rate_per_s, 0.04);
  EXPECT_DOUBLE_EQ(city->flash_at_s, 30.0);
  EXPECT_TRUE(city->day_night);

  // Dump re-emits a "city" block plus the encoded scenario name; both
  // survive the round trip.
  const auto again = runtime::parse_run_config(dump_run_config(*config));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->scenario, config->scenario);
}

TEST(CityRunConfig, BareCityScenarioNameIsValid) {
  const auto config = runtime::parse_run_config(R"({"scenario": "city"})");
  ASSERT_TRUE(config.has_value());
  const auto city = sim::parse_city_name(config->scenario);
  ASSERT_TRUE(city.has_value());
  EXPECT_EQ(city->cameras, 50);
}

TEST(CityRunConfig, ConflictsAndUnknownKeysAreHardErrors) {
  std::string error;
  // An explicit non-city scenario alongside a city block is a contradiction.
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"scenario": "S1", "city": {"cameras": 10}})", &error)
                   .has_value());
  EXPECT_NE(error.find("conflicts"), std::string::npos);

  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"city": {"camera_count": 10}})", &error)
                   .has_value());
  EXPECT_NE(error.find("unknown city key"), std::string::npos);

  EXPECT_FALSE(runtime::parse_run_config(R"({"city": {"cameras": 0}})", &error)
                   .has_value());
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"city": {"block_m": -5}})", &error)
                   .has_value());
}

TEST(RunConfig, GateKeysParseAndRoundTrip) {
  const auto config = runtime::parse_run_config(R"({
    "policy": {"correlation_gate": true, "gate_threshold": 0.1,
               "gate_window": 40, "gate_hold": 25}
  })");
  ASSERT_TRUE(config.has_value());
  EXPECT_TRUE(config->pipeline.frame_policy.correlation_gate);
  EXPECT_DOUBLE_EQ(config->pipeline.frame_policy.gate_threshold, 0.1);
  EXPECT_EQ(config->pipeline.frame_policy.gate_window, 40);
  EXPECT_EQ(config->pipeline.frame_policy.gate_hold, 25);

  const auto again = runtime::parse_run_config(dump_run_config(*config));
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->pipeline.frame_policy.correlation_gate);
  EXPECT_DOUBLE_EQ(again->pipeline.frame_policy.gate_threshold, 0.1);
  EXPECT_EQ(again->pipeline.frame_policy.gate_window, 40);
  EXPECT_EQ(again->pipeline.frame_policy.gate_hold, 25);

  std::string error;
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"policy": {"gate_threshold": 1.5}})", &error)
                   .has_value());
  EXPECT_FALSE(runtime::parse_run_config(
                   R"({"policy": {"gate_window": 0}})", &error)
                   .has_value());
}

}  // namespace
}  // namespace mvs

// mvs::rt — paced streaming-perception runtime.
//
// The contracts under test:
//   * rt-of-one: infinite budget + finish-late is bit-identical to the
//     unpaced pipeline (same frames, same recall, same schedule stats);
//   * determinism: the virtual clock never reads a real clock, so metric
//     fingerprints are byte-identical across thread counts;
//   * conservation: arrived == processed + dropped + superseded under every
//     late policy;
//   * deadline boundary: a frame EXACTLY on its budget is not a miss;
//   * the streaming scorer matches at emission time, not capture time;
//   * city scenarios and the correlation gate behave as documented.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "policy/correlation.hpp"
#include "rt/runner.hpp"
#include "rt/streaming_scorer.hpp"
#include "runtime/config.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/trace.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace mvs;

runtime::PipelineConfig small_cfg(int threads = 2) {
  runtime::PipelineConfig cfg;
  cfg.threads = threads;
  cfg.training_frames = 60;
  return cfg;
}

// ---------------------------------------------------------------- rt-of-one

TEST(RtRunner, InfiniteBudgetFinishLateMatchesUnpacedPipeline) {
  const int kFrames = 50;
  runtime::PipelineConfig cfg = small_cfg();

  runtime::Pipeline unpaced("S2", cfg);
  const runtime::PipelineResult base = unpaced.run(kFrames);

  runtime::RtConfig rtc;
  rtc.paced = true;
  rtc.deadline_ms = 0.0;  // infinite budget
  rtc.late_policy = runtime::LatePolicy::kFinishLate;
  rtc.arrival_jitter_ms = 7.0;  // jitter must not matter: nothing is dropped
  rt::RtRunner paced("S2", cfg, rtc);
  const rt::RtResult r = paced.run(kFrames);

  EXPECT_EQ(r.counters.arrived, kFrames);
  EXPECT_EQ(r.counters.processed, kFrames);
  EXPECT_EQ(r.counters.dropped, 0);
  EXPECT_EQ(r.counters.superseded, 0);
  // Bit-identical, not approximately equal.
  EXPECT_EQ(r.object_recall, base.object_recall);

  const runtime::PipelineResult paced_frames = paced.pipeline().result();
  ASSERT_EQ(paced_frames.frames.size(), base.frames.size());
  for (std::size_t f = 0; f < base.frames.size(); ++f) {
    EXPECT_EQ(paced_frames.frames[f].slowest_infer_ms,
              base.frames[f].slowest_infer_ms)
        << "frame " << f;
    EXPECT_EQ(paced_frames.frames[f].frame_recall,
              base.frames[f].frame_recall)
        << "frame " << f;
  }
}

// ------------------------------------------------------------- determinism

rt::RtResult run_paced(int threads, std::string* fingerprint) {
  obs::reset();
  obs::set_enabled(true);
  runtime::RtConfig rtc;
  rtc.paced = true;
  rtc.deadline_ms = 60.0;  // tight enough that drops/supersedes happen
  rtc.late_policy = runtime::LatePolicy::kSupersede;
  rtc.arrival_jitter_ms = 5.0;
  rt::RtRunner runner("S1", small_cfg(threads), rtc);
  const rt::RtResult r = runner.run(60);
  *fingerprint = obs::metrics().fingerprint();
  obs::set_enabled(false);
  obs::reset();
  return r;
}

TEST(RtRunner, ThreadCountDoesNotChangeScheduleOrMetrics) {
  std::string fp1, fp8;
  const rt::RtResult r1 = run_paced(1, &fp1);
  const rt::RtResult r8 = run_paced(8, &fp8);
  EXPECT_EQ(fp1, fp8);
  EXPECT_EQ(r1.streaming_recall, r8.streaming_recall);
  EXPECT_EQ(r1.object_recall, r8.object_recall);
  EXPECT_EQ(r1.makespan_ms, r8.makespan_ms);
  EXPECT_EQ(r1.counters.processed, r8.counters.processed);
  EXPECT_EQ(r1.counters.dropped, r8.counters.dropped);
  EXPECT_EQ(r1.counters.superseded, r8.counters.superseded);
  EXPECT_EQ(r1.counters.deadline_miss, r8.counters.deadline_miss);
  EXPECT_EQ(r1.counters.gpu_busy_ms, r8.counters.gpu_busy_ms);
}

// ------------------------------------------------------------ conservation

TEST(RtRunner, FrameConservationHoldsUnderEveryLatePolicy) {
  const int kFrames = 70;
  for (const runtime::LatePolicy policy :
       {runtime::LatePolicy::kDrop, runtime::LatePolicy::kSupersede,
        runtime::LatePolicy::kFinishLate}) {
    for (const double deadline : {30.0, 100.0, 0.0}) {
      runtime::RtConfig rtc;
      rtc.paced = true;
      rtc.deadline_ms = deadline;
      rtc.late_policy = policy;
      rtc.arrival_jitter_ms = 4.0;
      rt::RtRunner runner("S3", small_cfg(), rtc);
      const rt::RtResult r = runner.run(kFrames);
      EXPECT_EQ(r.counters.arrived, kFrames);
      EXPECT_EQ(r.counters.arrived, r.counters.processed +
                                        r.counters.dropped +
                                        r.counters.superseded)
          << "policy=" << runtime::to_string(policy)
          << " deadline=" << deadline;
      if (policy == runtime::LatePolicy::kFinishLate) {
        EXPECT_EQ(r.counters.dropped, 0);
        EXPECT_EQ(r.counters.superseded, 0);
      }
      if (policy == runtime::LatePolicy::kDrop)
        EXPECT_EQ(r.counters.superseded, 0);
      EXPECT_EQ(r.instants, kFrames);  // every instant is scored exactly once
    }
  }
}

// -------------------------------------------------------- deadline boundary

TEST(RtRunner, ExactlyOnTimeIsNotAMiss) {
  EXPECT_FALSE(rt::deadline_missed(100.0, 100.0));  // exactly on time
  EXPECT_TRUE(rt::deadline_missed(100.0001, 100.0));
  EXPECT_FALSE(rt::deadline_missed(99.9999, 100.0));
  // Nonpositive budget = no deadline at all.
  EXPECT_FALSE(rt::deadline_missed(1e12, 0.0));
  EXPECT_FALSE(rt::deadline_missed(1e12, -1.0));
}

// ------------------------------------------------- supersede under overload

TEST(RtRunner, SupersedeShedsWorkAndBoundsLagUnderOverload) {
  // A 5 ms period is far below any achievable service time: the queue grows
  // without bound under finish-late, while newest-wins sheds the backlog.
  const int kFrames = 80;
  runtime::RtConfig base;
  base.paced = true;
  base.frame_period_ms = 5.0;
  base.deadline_ms = 100.0;

  runtime::RtConfig fin = base;
  fin.late_policy = runtime::LatePolicy::kFinishLate;
  rt::RtRunner finish_late("S2", small_cfg(), fin);
  const rt::RtResult rf = finish_late.run(kFrames);

  runtime::RtConfig sup = base;
  sup.late_policy = runtime::LatePolicy::kSupersede;
  rt::RtRunner supersede("S2", small_cfg(), sup);
  const rt::RtResult rs = supersede.run(kFrames);

  EXPECT_GT(rs.counters.superseded, 0);
  EXPECT_LT(rs.counters.processed, rf.counters.processed);
  // Shedding the backlog finishes the run sooner: finish-late must serve
  // every stale frame, newest-wins skips them in O(1) virtual time.
  EXPECT_LT(rs.makespan_ms, rf.makespan_ms);
  // Conservation still holds with most frames superseded.
  EXPECT_EQ(rs.counters.arrived, rs.counters.processed +
                                     rs.counters.dropped +
                                     rs.counters.superseded);
}

TEST(RtRunner, TraceRecordsRtEvents) {
  runtime::TraceRecorder trace;
  runtime::RtConfig rtc;
  rtc.paced = true;
  rtc.frame_period_ms = 5.0;  // overload
  rtc.deadline_ms = 50.0;
  rtc.late_policy = runtime::LatePolicy::kSupersede;
  rt::RtRunner runner("S2", small_cfg(), rtc);
  runner.attach_trace(&trace);
  const rt::RtResult r = runner.run(60);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kRtSupersede),
            static_cast<std::size_t>(r.counters.superseded));
  EXPECT_EQ(trace.count(runtime::TraceEventType::kRtDrop),
            static_cast<std::size_t>(r.counters.dropped));
  EXPECT_GT(trace.count(runtime::TraceEventType::kRtDeadlineMiss) +
                trace.count(runtime::TraceEventType::kRtDrop),
            0u);
}

// --------------------------------------------------------- streaming scorer

TEST(StreamingScorer, MatchesAtEmissionTimeNotCaptureTime) {
  rt::StreamingScorer scorer(/*cameras=*/1, /*iou=*/0.4);
  const geom::BBox box_a{10, 10, 20, 20};
  const geom::BBox box_b{200, 200, 20, 20};
  std::vector<std::vector<detect::GroundTruthObject>> gt_a(1), gt_b(1);
  gt_a[0].push_back({1, box_a, detect::ObjectClass::kCar, 10.0});
  gt_b[0].push_back({1, box_b, detect::ObjectClass::kCar, 10.0});

  // No emission yet: everything is a miss.
  EXPECT_EQ(scorer.score_instant(0.0, gt_a), 0.0);

  // Result for t=0 emitted at t=5; by t=10 it is adopted and still matches
  // (object has not moved).
  std::vector<std::vector<geom::BBox>> reported(1);
  reported[0] = {box_a};
  scorer.note_emission(5.0, 0.0, reported);
  EXPECT_EQ(scorer.score_instant(10.0, gt_a), 1.0);

  // The world moved to B, but the freshest emission still says A: streaming
  // scoring charges the stale answer as a miss.
  EXPECT_EQ(scorer.score_instant(20.0, gt_b), 0.0);

  // A fresh emission lands exactly AT the next instant: emit <= t is
  // inclusive, so it is adopted there.
  reported[0] = {box_b};
  scorer.note_emission(30.0, 28.0, reported);
  EXPECT_EQ(scorer.score_instant(30.0, gt_b), 1.0);

  // An emission from the future (emit 50 > t 40) must NOT be visible early.
  reported[0] = {box_a};
  scorer.note_emission(50.0, 45.0, reported);
  EXPECT_EQ(scorer.score_instant(40.0, gt_b), 1.0);  // still the t=30 answer

  EXPECT_EQ(scorer.instants(), 5);
  EXPECT_EQ(scorer.emissions(), 3u);
  // 3 hits out of 5 sampled objects.
  EXPECT_DOUBLE_EQ(scorer.streaming_recall(), 3.0 / 5.0);
}

TEST(StreamingScorer, LagIsAgeOfAdoptedEmission) {
  rt::StreamingScorer scorer(1, 0.4);
  std::vector<std::vector<detect::GroundTruthObject>> gt(1);
  std::vector<std::vector<geom::BBox>> reported(1);
  scorer.note_emission(/*emit=*/8.0, /*capture=*/0.0, reported);
  scorer.score_instant(10.0, gt);  // lag = 10 - 0
  scorer.score_instant(20.0, gt);  // lag = 20 - 0 (still the same emission)
  EXPECT_DOUBLE_EQ(scorer.lag_ms().mean(), 15.0);
  EXPECT_DOUBLE_EQ(scorer.lag_ms().max(), 20.0);
}

// ------------------------------------------------------------ city scenario

TEST(CityScenario, NameRoundTripsAndFactoryBuilds) {
  sim::CityConfig cc;
  cc.cameras = 12;
  cc.block_m = 70.0;
  cc.rate_per_s = 0.05;
  cc.flash_at_s = 20.0;
  cc.flash_multiplier = 3.0;
  cc.day_night = true;
  const std::string name = sim::city_scenario_name(cc);
  const auto parsed = sim::parse_city_name(name);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cameras, cc.cameras);
  EXPECT_EQ(parsed->block_m, cc.block_m);
  EXPECT_EQ(parsed->rate_per_s, cc.rate_per_s);
  EXPECT_EQ(parsed->flash_at_s, cc.flash_at_s);
  EXPECT_EQ(parsed->flash_multiplier, cc.flash_multiplier);
  EXPECT_EQ(parsed->day_night, cc.day_night);
  // Canonical: re-encoding the parse yields the same name.
  EXPECT_EQ(sim::city_scenario_name(*parsed), name);

  const sim::Scenario s = sim::make_scenario(name, 7);
  EXPECT_EQ(s.cameras.size(), 12u);
  EXPECT_TRUE(s.quality.enabled);
  EXPECT_GT(s.warmup_s, 0.0);
}

TEST(CityScenario, BareNameYieldsDefaults) {
  const auto parsed = sim::parse_city_name("city");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cameras, 50);
  EXPECT_FALSE(sim::parse_city_name("S1").has_value());
  EXPECT_FALSE(sim::parse_city_name("city:bogus").has_value());
}

TEST(CityScenario, FlashCrowdMultipliesArrivalRate) {
  sim::CityConfig cc;
  cc.cameras = 4;
  cc.flash_at_s = 10.0;
  cc.flash_duration_s = 5.0;
  cc.flash_multiplier = 4.0;
  const sim::Scenario s = sim::make_city(cc, 11);
  ASSERT_TRUE(s.world != nullptr);
  const double t0 = s.warmup_s + 10.0 + 1.0;  // inside the burst
  EXPECT_DOUBLE_EQ(s.world->rate_multiplier(t0), 4.0);
  EXPECT_DOUBLE_EQ(s.world->rate_multiplier(s.warmup_s + 9.0), 1.0);
  EXPECT_DOUBLE_EQ(s.world->rate_multiplier(s.warmup_s + 16.0), 1.0);
}

TEST(CityScenario, DayNightSquareWave) {
  sim::QualitySchedule q;
  q.enabled = true;
  q.period_s = 120.0;
  EXPECT_FALSE(q.is_night(0.0));
  EXPECT_FALSE(q.is_night(119.0));
  EXPECT_TRUE(q.is_night(120.0));
  EXPECT_TRUE(q.is_night(239.0));
  EXPECT_FALSE(q.is_night(240.0));  // next day
}

TEST(CityScenario, PacedCityRunProcessesFrames) {
  sim::CityConfig cc;
  cc.cameras = 9;
  const std::string name = sim::city_scenario_name(cc);
  runtime::PipelineConfig cfg = small_cfg();
  cfg.policy = runtime::Policy::kBalbInd;  // no O(C^2) central stage
  cfg.training_frames = 40;
  runtime::RtConfig rtc;
  rtc.paced = true;
  rtc.deadline_ms = 150.0;
  rt::RtRunner runner(name, cfg, rtc);
  EXPECT_EQ(runner.pipeline().camera_count(), 9u);
  const rt::RtResult r = runner.run(40);
  EXPECT_EQ(r.counters.arrived, 40);
  EXPECT_GT(r.counters.processed, 0);
  EXPECT_GE(r.streaming_recall, 0.0);
  EXPECT_LE(r.streaming_recall, 1.0);
}

// --------------------------------------------------------- correlation gate

TEST(CorrelationGate, LearnsEntryAndReachabilityFromSightings) {
  policy::CorrelationGateConfig gc;
  gc.enabled = true;
  gc.threshold = 0.5;
  gc.window = 10;
  gc.hold = 0;  // no warm-start window: gating bites on the first refresh
  policy::CorrelationGate gate(gc, 4);
  EXPECT_FALSE(gate.fitted());
  EXPECT_TRUE(gate.hot(3));  // conservative before fit

  // Object 1: camera 0 (frame 1) -> camera 1 (frame 6, within the window).
  // Object 2: camera 2 (frame 1) -> camera 3 (frame 51, OUTSIDE the window).
  // (Frame-0 sightings would not mark entries: warmup leftovers are
  // excluded from entry learning.)
  std::vector<policy::CameraSightings> frames(60);
  for (auto& f : frames) f.assign(4, {});
  frames[1][0] = {1};
  frames[6][1] = {1};
  frames[1][2] = {2};
  frames[51][3] = {2};
  gate.fit(frames);
  ASSERT_TRUE(gate.fitted());

  EXPECT_TRUE(gate.entry(0));   // object 1 entered here
  EXPECT_TRUE(gate.entry(2));   // object 2 entered here
  EXPECT_FALSE(gate.entry(1));
  EXPECT_FALSE(gate.entry(3));
  EXPECT_TRUE(gate.reachable(0, 1));
  EXPECT_FALSE(gate.reachable(2, 3));  // transition fell outside the window
  EXPECT_FALSE(gate.reachable(1, 0));

  // Activity only in camera 0: cameras 0 (active+entry), 1 (reachable) and
  // 2 (entry) are hot; camera 3 has no reason to run.
  gate.refresh({1, 0, 0, 0});
  EXPECT_TRUE(gate.hot(0));
  EXPECT_TRUE(gate.hot(1));
  EXPECT_TRUE(gate.hot(2));
  EXPECT_FALSE(gate.hot(3));
}

TEST(CorrelationGate, HoldKeepsCameraWarmAfterActivityEnds) {
  policy::CorrelationGateConfig gc;
  gc.enabled = true;
  gc.threshold = 0.5;
  gc.window = 10;
  gc.hold = 2;
  policy::CorrelationGate gate(gc, 2);
  std::vector<policy::CameraSightings> frames(20);
  for (auto& f : frames) f.assign(2, {});
  frames[1][0] = {1};
  frames[4][1] = {1};
  gate.fit(frames);

  gate.refresh({1, 0});
  EXPECT_TRUE(gate.hot(1));  // reachable from active camera 0
  gate.refresh({0, 0});
  EXPECT_TRUE(gate.hot(1));  // hold still counting down
  gate.refresh({0, 0});
  EXPECT_TRUE(gate.hot(1));
  gate.refresh({0, 0});
  EXPECT_FALSE(gate.hot(1));  // hold expired
}

TEST(CorrelationGate, NoEvidenceCameraStaysHot) {
  policy::CorrelationGateConfig gc;
  gc.enabled = true;
  policy::CorrelationGate gate(gc, 2);
  std::vector<policy::CameraSightings> frames(5);
  for (auto& f : frames) f.assign(2, {});
  frames[0][0] = {1};  // camera 1 never sees anything during training
  gate.fit(frames);
  gate.refresh({0, 0});
  EXPECT_TRUE(gate.hot(1)) << "no evidence -> never prune";
}

// Gating must only ever REMOVE work, and the default stays bit-identical.
TEST(CorrelationGate, GatedPipelineCutsGpuTimeOnCityGrid) {
  sim::CityConfig cc;
  cc.cameras = 9;
  const std::string name = sim::city_scenario_name(cc);
  runtime::PipelineConfig cfg = small_cfg();
  cfg.policy = runtime::Policy::kBalbInd;
  cfg.training_frames = 60;

  runtime::Pipeline plain(name, cfg);
  const runtime::PipelineResult base = plain.run(40);

  runtime::PipelineConfig gated_cfg = cfg;
  gated_cfg.frame_policy.correlation_gate = true;
  // Short hold: the post-fit warm-start window (one hold) must expire well
  // inside the 40-frame run for gating to shed any work.
  gated_cfg.frame_policy.gate_hold = 4;
  runtime::Pipeline gated(name, gated_cfg);
  const runtime::PipelineResult cut = gated.run(40);

  double base_gpu = 0.0, cut_gpu = 0.0;
  for (const runtime::FrameStats& f : base.frames)
    for (double v : f.camera_infer_ms) base_gpu += v;
  for (const runtime::FrameStats& f : cut.frames)
    for (double v : f.camera_infer_ms) cut_gpu += v;
  EXPECT_LT(cut_gpu, base_gpu);
}

}  // namespace

#include <gtest/gtest.h>

#include <cmath>

#include "ml/decision_tree.hpp"
#include "ml/homography.hpp"
#include "ml/knn.hpp"
#include "ml/linear_model.hpp"
#include "ml/logistic.hpp"
#include "ml/ransac.hpp"
#include "ml/scaler.hpp"
#include "ml/svm.hpp"
#include "util/rng.hpp"

namespace mvs::ml {
namespace {

/// Linearly separable 2-D blobs around (0,0) and (4,4).
void make_blobs(util::Rng& rng, int n, std::vector<Feature>& xs,
                std::vector<int>& ys) {
  for (int i = 0; i < n; ++i) {
    const bool positive = i % 2 == 0;
    const double cx = positive ? 4.0 : 0.0;
    xs.push_back({cx + rng.gaussian(0, 0.5), cx + rng.gaussian(0, 0.5)});
    ys.push_back(positive ? 1 : 0);
  }
}

double accuracy(const BinaryClassifier& model, const std::vector<Feature>& xs,
                const std::vector<int>& ys) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    correct += (model.predict(xs[i]) == (ys[i] == 1));
  return static_cast<double>(correct) / static_cast<double>(xs.size());
}

TEST(StandardScaler, ZeroMeanUnitVariance) {
  std::vector<Feature> xs = {{1, 10}, {2, 20}, {3, 30}};
  StandardScaler scaler;
  scaler.fit(xs);
  const auto t = scaler.transform_all(xs);
  double mean0 = 0, mean1 = 0;
  for (const Feature& x : t) {
    mean0 += x[0];
    mean1 += x[1];
  }
  EXPECT_NEAR(mean0, 0.0, 1e-12);
  EXPECT_NEAR(mean1, 0.0, 1e-12);
  EXPECT_NEAR(t[2][0], -t[0][0], 1e-12);
}

TEST(StandardScaler, ConstantDimensionSafe) {
  std::vector<Feature> xs = {{5, 1}, {5, 2}, {5, 3}};
  StandardScaler scaler;
  scaler.fit(xs);
  const Feature t = scaler.transform({5, 2});
  EXPECT_NEAR(t[0], 0.0, 1e-12);  // no division blow-up
}

TEST(KNearest, ReturnsClosest) {
  const std::vector<Feature> xs = {{0, 0}, {10, 10}, {1, 1}, {5, 5}};
  const auto nn = k_nearest(xs, {0.5, 0.5}, 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_TRUE((nn[0] == 0 && nn[1] == 2) || (nn[0] == 2 && nn[1] == 0));
}

TEST(KNearest, KLargerThanDataset) {
  const std::vector<Feature> xs = {{0, 0}, {1, 1}};
  EXPECT_EQ(k_nearest(xs, {0, 0}, 10).size(), 2u);
}

/// All four classifiers must separate clean blobs.
template <typename Model>
void expect_separates_blobs(Model model) {
  util::Rng rng(99);
  std::vector<Feature> xs;
  std::vector<int> ys;
  make_blobs(rng, 200, xs, ys);
  model.fit(xs, ys);
  EXPECT_GE(accuracy(model, xs, ys), 0.97);
  // decision() sign must agree with predict().
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(model.predict(xs[static_cast<std::size_t>(i)]),
              model.decision(xs[static_cast<std::size_t>(i)]) > 0.0);
}

TEST(KnnClassifier, SeparatesBlobs) { expect_separates_blobs(KnnClassifier(5)); }
TEST(LogisticRegression, SeparatesBlobs) {
  expect_separates_blobs(LogisticRegression());
}
TEST(LinearSvm, SeparatesBlobs) { expect_separates_blobs(LinearSvm()); }
TEST(DecisionTree, SeparatesBlobs) { expect_separates_blobs(DecisionTree()); }

TEST(DecisionTree, XorNeedsDepth) {
  // XOR is not linearly separable; the tree must get it, linear models not.
  std::vector<Feature> xs;
  std::vector<int> ys;
  util::Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
    xs.push_back({a, b});
    ys.push_back((a > 0) != (b > 0) ? 1 : 0);
  }
  DecisionTree tree;
  tree.fit(xs, ys);
  EXPECT_GE(accuracy(tree, xs, ys), 0.95);
  EXPECT_GE(tree.depth(), 2);

  LinearSvm svm;
  svm.fit(xs, ys);
  EXPECT_LE(accuracy(svm, xs, ys), 0.75);  // linear model cannot solve XOR
}

TEST(DecisionTree, RespectsMaxDepth) {
  DecisionTree::Config cfg;
  cfg.max_depth = 2;
  DecisionTree tree(cfg);
  util::Rng rng(4);
  std::vector<Feature> xs;
  std::vector<int> ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back({rng.uniform(0, 1), rng.uniform(0, 1)});
    ys.push_back(rng.bernoulli(0.5) ? 1 : 0);
  }
  tree.fit(xs, ys);
  EXPECT_LE(tree.depth(), 2);
}

TEST(LogisticRegression, ProbabilityCalibrated) {
  util::Rng rng(5);
  std::vector<Feature> xs;
  std::vector<int> ys;
  make_blobs(rng, 300, xs, ys);
  LogisticRegression model;
  model.fit(xs, ys);
  EXPECT_GT(model.probability({4, 4}), 0.9);
  EXPECT_LT(model.probability({0, 0}), 0.1);
}

TEST(KnnRegressor, InterpolatesLocally) {
  // y = x on a grid; KNN must interpolate in range.
  std::vector<Feature> xs, ys;
  for (int i = 0; i <= 10; ++i) {
    xs.push_back({static_cast<double>(i)});
    ys.push_back({static_cast<double>(i)});
  }
  KnnRegressor model(3);
  model.fit(xs, ys);
  EXPECT_NEAR(model.predict({5.0})[0], 5.0, 0.5);
  EXPECT_NEAR(model.predict({2.4})[0], 2.4, 0.7);
}

TEST(LinearRegression, RecoversAffineMap) {
  util::Rng rng(6);
  std::vector<Feature> xs, ys;
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(-3, 3), b = rng.uniform(-3, 3);
    xs.push_back({a, b});
    ys.push_back({2 * a - b + 1, a + 3 * b - 2});  // two outputs
  }
  LinearRegression model;
  model.fit(xs, ys);
  const Feature pred = model.predict({1.0, 1.0});
  EXPECT_NEAR(pred[0], 2.0, 1e-6);
  EXPECT_NEAR(pred[1], 2.0, 1e-6);
}

TEST(MeanAbsoluteError, ZeroOnPerfectModel) {
  std::vector<Feature> xs = {{0}, {1}, {2}};
  std::vector<Feature> ys = {{0}, {2}, {4}};
  LinearRegression model;
  model.fit(xs, ys);
  EXPECT_NEAR(mean_absolute_error(model, xs, ys), 0.0, 1e-6);
}

TEST(Ransac, IgnoresOutliers) {
  util::Rng rng(7);
  std::vector<Feature> xs, ys;
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(-3, 3);
    xs.push_back({a});
    // 20% gross outliers.
    ys.push_back({i % 5 == 0 ? 100.0 : 2 * a + 1});
  }
  RansacRegressor::Config cfg;
  cfg.inlier_threshold = 0.1;
  cfg.sample_size = 4;
  RansacRegressor ransac(cfg);
  ransac.fit(xs, ys);
  EXPECT_NEAR(ransac.predict({2.0})[0], 5.0, 0.2);
  EXPECT_GE(ransac.inlier_count(), 70u);

  // Plain least squares is dragged off by the outliers.
  LinearRegression plain;
  plain.fit(xs, ys);
  EXPECT_GT(std::abs(plain.predict({2.0})[0] - 5.0), 2.0);
}

TEST(Homography, IdentityByDefault) {
  Homography h;
  const auto p = h.apply({3.0, 4.0});
  EXPECT_DOUBLE_EQ(p[0], 3.0);
  EXPECT_DOUBLE_EQ(p[1], 4.0);
}

TEST(Homography, RecoversSyntheticTransform) {
  // Ground-truth projective map; estimate from 12 exact correspondences.
  const std::array<double, 9> truth = {1.2, 0.1, 5.0, -0.2, 0.9,
                                       -3.0, 1e-4, -2e-4, 1.0};
  auto apply_truth = [&](double x, double y) {
    const double w = truth[6] * x + truth[7] * y + truth[8];
    return std::array<double, 2>{
        (truth[0] * x + truth[1] * y + truth[2]) / w,
        (truth[3] * x + truth[4] * y + truth[5]) / w};
  };
  std::vector<std::array<double, 2>> src, dst;
  util::Rng rng(8);
  for (int i = 0; i < 12; ++i) {
    const double x = rng.uniform(0, 100), y = rng.uniform(0, 100);
    src.push_back({x, y});
    dst.push_back(apply_truth(x, y));
  }
  Homography h;
  ASSERT_TRUE(h.estimate(src, dst));
  for (int i = 0; i < 10; ++i) {
    const double x = rng.uniform(0, 100), y = rng.uniform(0, 100);
    const auto expect = apply_truth(x, y);
    const auto got = h.apply({x, y});
    EXPECT_NEAR(got[0], expect[0], 1e-4);
    EXPECT_NEAR(got[1], expect[1], 1e-4);
  }
}

TEST(Homography, RejectsTooFewPoints) {
  Homography h;
  EXPECT_FALSE(h.estimate({{0, 0}, {1, 1}, {2, 2}}, {{0, 0}, {1, 1}, {2, 2}}));
}

TEST(HomographyRegressor, MapsBoxesUnderTranslation) {
  // Pure translation: boxes map exactly, so the regressor must too.
  std::vector<Feature> xs, ys;
  util::Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    const double cx = rng.uniform(10, 90), cy = rng.uniform(10, 90);
    const double w = rng.uniform(5, 15), h = rng.uniform(5, 15);
    xs.push_back({cx, cy, w, h});
    ys.push_back({cx + 20, cy - 10, w, h});
  }
  HomographyRegressor model;
  model.fit(xs, ys);
  const Feature pred = model.predict({50, 50, 10, 10});
  EXPECT_NEAR(pred[0], 70, 0.5);
  EXPECT_NEAR(pred[1], 40, 0.5);
  EXPECT_NEAR(pred[2], 10, 0.5);
}

/// KNN beats plain linear regression on a non-linear mapping — the core
/// claim behind the paper's choice of a data-driven lookup model (Fig. 11).
TEST(RegressorComparison, KnnWinsOnNonlinearMap) {
  util::Rng rng(10);
  std::vector<Feature> xs, ys;
  for (int i = 0; i < 400; ++i) {
    const double cx = rng.uniform(0, 1), cy = rng.uniform(0, 1);
    const double w = rng.uniform(0.02, 0.1), h = w * 1.5;
    // Non-linear (perspective-like) warp.
    const double denom = 0.4 + 0.6 * cy;
    xs.push_back({cx, cy, w, h});
    ys.push_back({cx / denom, cy * cy, w / denom, h / denom});
  }
  const std::size_t split = 300;
  const std::vector<Feature> train_x(xs.begin(), xs.begin() + split);
  const std::vector<Feature> train_y(ys.begin(), ys.begin() + split);
  const std::vector<Feature> test_x(xs.begin() + split, xs.end());
  const std::vector<Feature> test_y(ys.begin() + split, ys.end());

  KnnRegressor knn(5);
  knn.fit(train_x, train_y);
  LinearRegression linear;
  linear.fit(train_x, train_y);

  const double knn_mae = mean_absolute_error(knn, test_x, test_y);
  const double lin_mae = mean_absolute_error(linear, test_x, test_y);
  EXPECT_LT(knn_mae, lin_mae);
}

}  // namespace
}  // namespace mvs::ml

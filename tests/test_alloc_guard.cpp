// Zero-allocation guard for the steady-state hot paths (DESIGN.md §11).
//
// Global operator new is replaced with a counting hook that is armed only
// around the measured windows, so gtest's own bookkeeping never pollutes the
// counts. The invariant under test: once warm, a REGULAR (non-key) frame
// tick allocates nothing on the pipeline path, a fleet serving tick
// allocates nothing, and recording an obs span allocates nothing on the
// producer thread. Key frames are exempt by design (mask rebuild, central
// BALB, association); the async span exporter thread is exempt via
// util::alloc_track::t_exempt (it drains rings off the frame path).

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/fleet.hpp"
#include "obs/obs.hpp"
#include "rt/runner.hpp"
#include "runtime/pipeline.hpp"
#include "util/alloc_track.hpp"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<long> g_allocs{0};

inline void note_alloc() {
  if (g_armed.load(std::memory_order_relaxed) &&
      !mvs::util::alloc_track::t_exempt)
    g_allocs.fetch_add(1, std::memory_order_relaxed);
}

void* checked_alloc(std::size_t n) {
  note_alloc();
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  return p;
}

void* checked_aligned_alloc(std::size_t n, std::size_t align) {
  note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n ? n : 1) != 0)
    throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return checked_alloc(n); }
void* operator new[](std::size_t n) { return checked_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return checked_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return checked_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace mvs;

class Armed {
 public:
  Armed() {
    g_allocs.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
  }
  ~Armed() { g_armed.store(false, std::memory_order_relaxed); }
  long count() const { return g_allocs.load(std::memory_order_relaxed); }
};

// "Steady state" is reached once every reusable buffer has hit its
// workload high-water mark: per-camera scratch grows amortized whenever a
// frame sets a new peak (more tracks, more matches than ever before), so
// early ticks may allocate while the marks climb. The guard therefore runs
// until it observes a long streak of consecutive zero-allocation regular
// ticks — proving the system actually converges to zero — and fails if the
// streak never materializes within a generous tick budget.
constexpr int kMaxTicks = 1000;

TEST(AllocGuard, PipelineSteadyTicksAllocateNothing) {
  runtime::PipelineConfig cfg;
  cfg.threads = 4;
  cfg.keep_history = false;  // serving mode: no per-frame history growth
  runtime::Pipeline pipe("S2", cfg);

  constexpr int kRequiredStreak = 15;  // > one full key-frame horizon
  int streak = 0;
  int ticks = 0;
  for (; ticks < kMaxTicks && streak < kRequiredStreak; ++ticks) {
    g_allocs.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
    const runtime::FrameStats& stats = pipe.run_frame_ref();
    g_armed.store(false, std::memory_order_relaxed);
    if (stats.key_frame) continue;  // key frames are exempt by design
    if (g_allocs.load(std::memory_order_relaxed) == 0)
      ++streak;
    else
      streak = 0;
  }
  EXPECT_EQ(streak, kRequiredStreak)
      << "pipeline never reached a zero-allocation steady state in "
      << ticks << " ticks";
}

TEST(AllocGuard, FleetSteadyTicksAllocateNothing) {
  fleet::FleetConfig fc;
  fc.threads = 4;
  fleet::Fleet fl(fc);
  runtime::FleetSessionSpec spec;
  spec.scenario = "S2";
  spec.pipeline.keep_history = false;
  ASSERT_TRUE(fl.admit(spec).admitted);
  ASSERT_TRUE(fl.admit(spec).admitted);

  // Sessions key together every horizon (10) ticks (same spec, same phase)
  // and key ticks are exempt, so the longest possible zero streak between
  // key ticks is 9 — require exactly that, end to end through dispatch,
  // session stepping, arbitration, and rollups.
  constexpr int kRequiredStreak = 9;
  int streak = 0;
  int ticks = 0;
  for (; ticks < kMaxTicks && streak < kRequiredStreak; ++ticks) {
    g_allocs.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
    fl.step();
    g_armed.store(false, std::memory_order_relaxed);
    if (g_allocs.load(std::memory_order_relaxed) == 0)
      ++streak;
    else
      streak = 0;
  }
  EXPECT_EQ(streak, kRequiredStreak)
      << "fleet never reached a zero-allocation steady state in " << ticks
      << " ticks";
}

// The paced runtime inherits the invariant: once the arrival queue and the
// streaming scorer's emission pool have hit their high-water marks, a
// steady-state step() — arrival bookkeeping, drop/supersede resolution,
// service accounting, emission copy, instant scoring — allocates nothing.
// Ticks that process a key frame are exempt, exactly like the raw pipeline.
TEST(AllocGuard, PacedRuntimeSteadyTicksAllocateNothing) {
  runtime::PipelineConfig cfg;
  cfg.threads = 4;
  cfg.keep_history = false;
  runtime::RtConfig rtc;
  rtc.paced = true;
  rtc.deadline_ms = 80.0;
  rtc.late_policy = runtime::LatePolicy::kSupersede;
  rtc.arrival_jitter_ms = 5.0;
  rt::RtRunner runner("S2", cfg, rtc);

  constexpr int kRequiredStreak = 9;
  int streak = 0;
  int ticks = 0;
  for (; ticks < kMaxTicks && streak < kRequiredStreak; ++ticks) {
    g_allocs.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
    const rt::StepOutcome out = runner.step();
    g_armed.store(false, std::memory_order_relaxed);
    if (out.key_frame_ran) continue;  // key frames are exempt by design
    if (g_allocs.load(std::memory_order_relaxed) == 0)
      ++streak;
    else
      streak = 0;
  }
  EXPECT_EQ(streak, kRequiredStreak)
      << "paced runtime never reached a zero-allocation steady state in "
      << ticks << " ticks";
}

// Attribution on (critical-path record + flight-recorder append + burn-rate
// push) must preserve the zero-allocation invariant: the CriticalPath owns
// fixed histogram arrays, the recorder ring is seqlock slots, and the burn
// windows are fixed rings. Auto dumps are disabled (miss_threshold = 0)
// because building a postmortem document allocates by design — it is a cold
// path triggered at most once per ring generation.
TEST(AllocGuard, PacedRuntimeAttributionSteadyTicksAllocateNothing) {
  obs::set_attribution_enabled(true);
  obs::FlightRecorder::Config rc;
  rc.miss_threshold = 0;
  obs::recorder().configure(rc);

  runtime::PipelineConfig cfg;
  cfg.threads = 4;
  cfg.keep_history = false;
  runtime::RtConfig rtc;
  rtc.paced = true;
  rtc.deadline_ms = 80.0;
  rtc.late_policy = runtime::LatePolicy::kSupersede;
  rtc.arrival_jitter_ms = 5.0;
  rtc.miss_budget = 0.2;  // the burn monitor pushes on every resolved frame
  rt::RtRunner runner("S2", cfg, rtc);

  constexpr int kRequiredStreak = 9;
  int streak = 0;
  int ticks = 0;
  for (; ticks < kMaxTicks && streak < kRequiredStreak; ++ticks) {
    g_allocs.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
    const rt::StepOutcome out = runner.step();
    g_armed.store(false, std::memory_order_relaxed);
    if (out.key_frame_ran) continue;  // key frames are exempt by design
    if (g_allocs.load(std::memory_order_relaxed) == 0)
      ++streak;
    else
      streak = 0;
  }
  obs::set_attribution_enabled(false);
  obs::reset();
  EXPECT_EQ(streak, kRequiredStreak)
      << "paced runtime with attribution never reached a zero-allocation "
         "steady state in "
      << ticks << " ticks";
}

TEST(AllocGuard, FleetAttributionSteadyTicksAllocateNothing) {
  obs::set_attribution_enabled(true);
  obs::FlightRecorder::Config rc;
  rc.miss_threshold = 0;
  obs::recorder().configure(rc);

  fleet::FleetConfig fc;
  fc.threads = 4;
  fc.burn_error_budget = 0.2;  // session burn monitors push every tick
  fleet::Fleet fl(fc);
  runtime::FleetSessionSpec spec;
  spec.scenario = "S2";
  spec.pipeline.keep_history = false;
  ASSERT_TRUE(fl.admit(spec).admitted);
  ASSERT_TRUE(fl.admit(spec).admitted);

  constexpr int kRequiredStreak = 9;
  int streak = 0;
  int ticks = 0;
  for (; ticks < kMaxTicks && streak < kRequiredStreak; ++ticks) {
    g_allocs.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
    fl.step();
    g_armed.store(false, std::memory_order_relaxed);
    if (g_allocs.load(std::memory_order_relaxed) == 0)
      ++streak;
    else
      streak = 0;
  }
  obs::set_attribution_enabled(false);
  obs::reset();
  EXPECT_EQ(streak, kRequiredStreak)
      << "fleet with attribution never reached a zero-allocation steady "
         "state in "
      << ticks << " ticks";
}

TEST(AllocGuard, SpanRecordingAllocatesNothingOnHotThread) {
  obs::set_enabled(true);
  // Warm: register this thread's slot and let the ring/exporter settle.
  for (int i = 0; i < 1000; ++i) {
    MVS_SPAN("guard.warm");
  }
  {
    Armed armed;
    for (int i = 0; i < 1000; ++i) {
      MVS_SPAN("guard.hot");
    }
    g_armed.store(false, std::memory_order_relaxed);
    EXPECT_EQ(armed.count(), 0)
        << "recording a span must not allocate on the producer thread";
  }
  obs::set_enabled(false);
  obs::reset();
}

// Satellite: SpanTracer keeps its fixed slot table (rings, drained-vector
// capacity) across reset(), so re-enabling tracing after a reset must not
// reallocate on the producer thread — re-registration only flips the slot's
// generation under the registry mutex.
TEST(AllocGuard, SpanTracerResetReenableDoesNotReallocate) {
  obs::set_enabled(true);
  for (int i = 0; i < 1000; ++i) {
    MVS_SPAN("guard.gen1");
  }
  (void)obs::tracer().span_counts();  // force a full exporter drain (cold)
  obs::reset();
  {
    Armed armed;
    for (int i = 0; i < 1000; ++i) {
      MVS_SPAN("guard.gen2");
    }
    g_armed.store(false, std::memory_order_relaxed);
    EXPECT_EQ(armed.count(), 0)
        << "re-enabling after reset() must reuse the slot table";
  }
  obs::set_enabled(false);
  obs::reset();
}

}  // namespace

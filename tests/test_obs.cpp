// mvs::obs tests: streaming-histogram percentile accuracy against an exact
// sorted-sample oracle, concurrent metric updates under the thread pool,
// Chrome trace-event JSON schema round-trips, and null-sink no-op semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace mvs;

// Exact nearest-rank percentile (the definition Histogram::percentile
// approximates): value at rank ceil(p/100 * n) in the sorted samples.
double exact_percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<long long>(samples.size());
  long long rank = static_cast<long long>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  rank = std::max(1LL, std::min(rank, n));
  return samples[static_cast<std::size_t>(rank - 1)];
}

// Streaming estimate must sit within one bucket width of the exact value —
// the bound documented in metrics.hpp. Only meaningful for positive exact
// values that land in a finite-width bucket.
void expect_within_one_bucket(const obs::Histogram& hist,
                              const std::vector<double>& samples, double p) {
  const double exact = exact_percentile(samples, p);
  ASSERT_GT(exact, 0.0);
  const int idx = obs::Histogram::bucket_index(exact);
  ASSERT_GE(idx, 1);
  ASSERT_LT(idx, obs::Histogram::kBucketCount - 1);
  const double width =
      obs::Histogram::bucket_upper(idx) - obs::Histogram::bucket_lower(idx);
  const double est = hist.percentile(p);
  EXPECT_LE(std::abs(est - exact), width)
      << "p" << p << ": est=" << est << " exact=" << exact
      << " bucket width=" << width;
}

TEST(ObsHistogram, BucketIndexBoundaries) {
  EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(-3.5), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(
                std::numeric_limits<double>::quiet_NaN()),
            0);
  // Every positive value lands in a bucket whose [lo, hi) range contains it
  // (except at the clamped extremes, where it lands inside the edge bucket).
  for (double v : {1e-12, 0.001, 0.5, 1.0, 1.5, 2.0, 1000.0, 1e9, 1e12}) {
    const int idx = obs::Histogram::bucket_index(v);
    ASSERT_GE(idx, 1);
    ASSERT_LT(idx, obs::Histogram::kBucketCount);
    if (idx > 1 && idx < obs::Histogram::kBucketCount - 1) {
      EXPECT_GE(v, obs::Histogram::bucket_lower(idx)) << v;
      EXPECT_LT(v, obs::Histogram::bucket_upper(idx)) << v;
    }
  }
  // Exact powers of two open their own bucket: 2^k is the inclusive lower
  // bound of bucket(2^k).
  EXPECT_EQ(obs::Histogram::bucket_lower(obs::Histogram::bucket_index(8.0)),
            8.0);
}

TEST(ObsHistogram, EmptyAndSingleSample) {
  obs::Histogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_TRUE(std::isnan(hist.min()));
  EXPECT_TRUE(std::isnan(hist.max()));
  EXPECT_TRUE(std::isnan(hist.percentile(50.0)));

  hist.record(42.0);
  EXPECT_EQ(hist.count(), 1);
  EXPECT_DOUBLE_EQ(hist.min(), 42.0);
  EXPECT_DOUBLE_EQ(hist.max(), 42.0);
  // Midpoint clamped to [min, max] collapses to the sample itself.
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(hist.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(hist.percentile(100.0), 42.0);
}

TEST(ObsHistogram, PercentileAccuracyUniform) {
  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> dist(0.1, 900.0);
  obs::Histogram hist;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    hist.record(v);
  }
  for (double p : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9})
    expect_within_one_bucket(hist, samples, p);
}

TEST(ObsHistogram, PercentileAccuracyHeavyTail) {
  // Latency-shaped data: lognormal body with a far tail.
  std::mt19937 rng(777);
  std::lognormal_distribution<double> dist(1.0, 1.5);
  obs::Histogram hist;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    hist.record(v);
  }
  for (double p : {50.0, 95.0, 99.0, 99.9})
    expect_within_one_bucket(hist, samples, p);
}

TEST(ObsHistogram, PercentileAccuracyAdversarial) {
  // All mass in one bucket: [16, 32). The estimate must still land within
  // one bucket width, and clamping to [min, max] keeps it inside the data.
  {
    obs::Histogram hist;
    std::vector<double> samples;
    for (int i = 0; i < 1000; ++i) {
      const double v = 16.0 + 16.0 * (static_cast<double>(i) / 1000.0);
      samples.push_back(v);
      hist.record(v);
    }
    for (double p : {50.0, 95.0, 99.0})
      expect_within_one_bucket(hist, samples, p);
    EXPECT_GE(hist.percentile(99.0), hist.min());
    EXPECT_LE(hist.percentile(99.0), hist.max());
  }
  // Exact bucket boundaries (powers of two) — rank walking must not be off
  // by one when samples sit on the inclusive lower edges.
  {
    obs::Histogram hist;
    std::vector<double> samples;
    for (int e = 0; e <= 10; ++e)
      for (int r = 0; r < 100; ++r) {
        const double v = std::ldexp(1.0, e);
        samples.push_back(v);
        hist.record(v);
      }
    for (double p : {50.0, 95.0, 99.0})
      expect_within_one_bucket(hist, samples, p);
  }
  // Bimodal with an empty chasm between the modes.
  {
    obs::Histogram hist;
    std::vector<double> samples;
    for (int i = 0; i < 900; ++i) { samples.push_back(0.5); hist.record(0.5); }
    for (int i = 0; i < 100; ++i) {
      samples.push_back(4096.0);
      hist.record(4096.0);
    }
    for (double p : {50.0, 89.0, 95.0, 99.0})
      expect_within_one_bucket(hist, samples, p);
  }
}

TEST(ObsHistogram, NonPositiveValuesUnderflow) {
  obs::Histogram hist;
  hist.record(-5.0);
  hist.record(0.0);
  hist.record(3.0);
  EXPECT_EQ(hist.count(), 3);
  EXPECT_DOUBLE_EQ(hist.min(), -5.0);
  EXPECT_DOUBLE_EQ(hist.max(), 3.0);
  const std::vector<long long> buckets = hist.bucket_counts();
  EXPECT_EQ(buckets[0], 2);  // underflow bucket holds both non-positives
  // Estimates stay inside the observed range even with the degenerate
  // underflow bucket in play.
  for (double p : {1.0, 50.0, 99.0}) {
    const double est = hist.percentile(p);
    EXPECT_GE(est, hist.min());
    EXPECT_LE(est, hist.max());
  }
}

TEST(ObsMetrics, ConcurrentUpdatesMatchSerialFingerprint) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;

  obs::MetricsRegistry serial;
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kPerThread; ++i) {
      serial.counter("events").add(1);
      serial.histogram("latency_ms").record(static_cast<double>(i % 97) + 0.5);
    }

  obs::MetricsRegistry concurrent;
  util::ThreadPool pool(kThreads);
  pool.parallel_for_each(kThreads, [&](std::size_t) {
    for (int i = 0; i < kPerThread; ++i) {
      concurrent.counter("events").add(1);
      concurrent.histogram("latency_ms").record(
          static_cast<double>(i % 97) + 0.5);
    }
  });

  EXPECT_EQ(serial.counter("events").value(),
            static_cast<long long>(kThreads) * kPerThread);
  EXPECT_EQ(serial.fingerprint(), concurrent.fingerprint());
  EXPECT_EQ(serial.histogram("latency_ms").bucket_counts(),
            concurrent.histogram("latency_ms").bucket_counts());
}

TEST(ObsMetrics, ToJsonExposesPercentiles) {
  obs::MetricsRegistry reg;
  reg.counter("frames").add(7);
  reg.gauge("sessions").set(3.0);
  for (int i = 1; i <= 100; ++i)
    reg.histogram("infer_ms").record(static_cast<double>(i));

  std::string error;
  const auto doc = util::Json::parse(reg.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_DOUBLE_EQ(doc->find("counters")->number_or("frames", -1.0), 7.0);
  EXPECT_DOUBLE_EQ(doc->find("gauges")->number_or("sessions", -1.0), 3.0);
  const util::Json* hist = doc->find("histograms")->find("infer_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->number_or("count", -1.0), 100.0);
  EXPECT_DOUBLE_EQ(hist->number_or("min", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(hist->number_or("max", -1.0), 100.0);
  for (const char* key : {"p50", "p95", "p99"}) {
    const double v = hist->number_or(key, -1.0);
    EXPECT_GE(v, 1.0) << key;
    EXPECT_LE(v, 100.0) << key;
  }
  const util::Json* buckets = hist->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  long long total = 0;
  for (const util::Json& b : buckets->as_array())
    total += static_cast<long long>(b.number_or("count", 0.0));
  EXPECT_EQ(total, 100);
}

TEST(ObsMetrics, WallClockHistogramsFingerprintByCountOnly) {
  obs::MetricsRegistry a, b;
  a.histogram("stage_wall_ms").record(1.0);
  b.histogram("stage_wall_ms").record(1000.0);  // different duration, same n
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  obs::MetricsRegistry c, d;
  c.histogram("stage_ms").record(1.0);
  d.histogram("stage_ms").record(1000.0);  // value-carrying hist must differ
  EXPECT_NE(c.fingerprint(), d.fingerprint());
}

TEST(ObsSpans, ChromeTraceJsonSchemaRoundTrip) {
  obs::set_enabled(true);
  obs::reset();
  {
    MVS_SPAN("outer");
    { MVS_SPAN("inner"); }
    { MVS_SPAN("inner"); }
  }
  std::thread worker([] { MVS_SPAN("worker_span"); });
  worker.join();
  obs::set_enabled(false);

  const std::map<std::string, long long> counts = obs::tracer().span_counts();
  EXPECT_EQ(counts.at("outer"), 1);
  EXPECT_EQ(counts.at("inner"), 2);
  EXPECT_EQ(counts.at("worker_span"), 1);
  EXPECT_EQ(obs::tracer().total_events(), 4u);

  // Nesting: the snapshot is sorted (tid, ts, depth), so on the main thread
  // "outer" (depth 0) precedes and encloses both "inner" (depth 1) events.
  const std::vector<obs::SpanEvent> events = obs::tracer().collect();
  ASSERT_EQ(events.size(), 4u);
  const obs::SpanEvent& outer = events[0];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  for (std::size_t i = 1; i <= 2; ++i) {
    EXPECT_STREQ(events[i].name, "inner");
    EXPECT_EQ(events[i].depth, 1);
    EXPECT_EQ(events[i].tid, outer.tid);
    EXPECT_GE(events[i].ts_us, outer.ts_us);
    EXPECT_LE(events[i].ts_us + events[i].dur_us,
              outer.ts_us + outer.dur_us);
  }
  EXPECT_NE(events[3].tid, outer.tid);

  // Chrome trace-event schema: top-level traceEvents array; "M" metadata
  // rows name each thread; "X" complete events carry pid/tid/ts/dur.
  std::string error;
  const auto doc = util::Json::parse(obs::tracer().chrome_trace_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->string_or("displayTimeUnit", ""), "ms");
  const util::Json* trace_events = doc->find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  int complete = 0, metadata = 0;
  for (const util::Json& e : trace_events->as_array()) {
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.string_or("ph", "");
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.string_or("name", ""), "thread_name");
    } else {
      ++complete;
      EXPECT_EQ(ph, "X");
      EXPECT_FALSE(e.string_or("name", "").empty());
      ASSERT_TRUE(e.find("ts") != nullptr && e.find("ts")->is_number());
      ASSERT_TRUE(e.find("dur") != nullptr && e.find("dur")->is_number());
    }
  }
  EXPECT_EQ(complete, 4);
  EXPECT_EQ(metadata, 2);  // one thread_name row per registered thread

  obs::reset();
}

TEST(ObsSpans, ResetDropsEventsAndReassignsTids) {
  obs::set_enabled(true);
  obs::reset();
  { MVS_SPAN("before_reset"); }
  EXPECT_EQ(obs::tracer().total_events(), 1u);
  obs::reset();
  EXPECT_EQ(obs::tracer().total_events(), 0u);
  EXPECT_TRUE(obs::tracer().span_counts().empty());
  { MVS_SPAN("after_reset"); }
  const std::vector<obs::SpanEvent> events = obs::tracer().collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tid, 0);  // fresh generation re-registers from 0
  obs::set_enabled(false);
  obs::reset();
}

TEST(ObsNullSink, DisabledMacrosRecordNothing) {
  obs::set_enabled(false);
  obs::reset();

  MVS_COUNT("null.counter", 5);
  MVS_GAUGE("null.gauge", 1.0);
  MVS_HIST("null.hist", 3.0);
  { MVS_SPAN("null.span"); }

  EXPECT_EQ(obs::tracer().total_events(), 0u);
  std::string error;
  const auto doc = util::Json::parse(obs::metrics().to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_TRUE(doc->find("counters")->as_object().empty());
  EXPECT_TRUE(doc->find("gauges")->as_object().empty());
  EXPECT_TRUE(doc->find("histograms")->as_object().empty());

  // A Span constructed while disabled stays inert even if the flag flips
  // mid-scope: the enable check happens at construction time.
  {
    obs::Span span("flipped");
    obs::set_enabled(true);
  }
  obs::set_enabled(false);
  EXPECT_EQ(obs::tracer().total_events(), 0u);
  obs::reset();
}

}  // namespace

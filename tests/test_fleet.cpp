#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "fleet/fleet.hpp"
#include "gpu/batch_planner.hpp"
#include "gpu/device_profile.hpp"
#include "policy/policy.hpp"
#include "util/json.hpp"

namespace mvs::fleet {
namespace {

runtime::PipelineConfig fast_config(std::uint64_t seed = 5) {
  runtime::PipelineConfig cfg;
  cfg.policy = runtime::Policy::kBalb;
  cfg.horizon_frames = 10;
  cfg.training_frames = 120;
  cfg.seed = seed;
  return cfg;
}

SessionSpec spec(const std::string& name, std::uint64_t seed = 5,
                 double weight = 1.0) {
  SessionSpec s;
  s.name = name;
  s.scenario = "S2";
  s.pipeline = fast_config(seed);
  s.weight = weight;
  return s;
}

/// Static admission demand of an S2 deployment with assumed_tasks = 0:
/// one full-frame inspection per camera amortized over the horizon.
double s2_static_demand_ms(int horizon = 10) {
  return (gpu::jetson_xavier().full_frame_ms() +
          gpu::jetson_nano().full_frame_ms()) /
         static_cast<double>(horizon);
}

runtime::CameraGpuWork work(std::vector<geom::SizeClassId> tasks,
                            bool full = false) {
  runtime::CameraGpuWork w;
  w.full_frame = full;
  w.tasks = std::move(tasks);
  return w;
}

// ---------------------------------------------------------------- arbiter --

TEST(Arbiter, LoneSubmissionMatchesPlanBatchesBitExactly) {
  const gpu::DeviceProfile nano = gpu::jetson_nano();
  const std::vector<geom::SizeClassId> tasks{0, 0, 0, 1, 2, 2, 2, 3};
  const gpu::BatchPlan solo = gpu::plan_batches(tasks, nano);

  GpuArbiter arbiter;
  arbiter.begin_tick();
  arbiter.submit(0, 0, nano, work(tasks));
  const TickPlan plan = arbiter.plan_tick();

  ASSERT_EQ(plan.shares.size(), 1u);
  EXPECT_EQ(plan.shares[0].session, 0);
  EXPECT_EQ(plan.shares[0].camera, 0);
  // Bit-exact, not approximately equal: the attribution loop must follow the
  // merged plan's batch order so a lone submission reproduces plan_batches'
  // floating-point accumulation exactly.
  EXPECT_DOUBLE_EQ(plan.shares[0].attributed_ms, solo.actual_latency_ms);
  EXPECT_DOUBLE_EQ(plan.shares[0].isolated_ms, solo.actual_latency_ms);
  EXPECT_EQ(plan.shared_batches, static_cast<long>(solo.batches.size()));
  EXPECT_EQ(plan.isolated_batches, plan.shared_batches);
  EXPECT_DOUBLE_EQ(plan.shared_busy_ms, solo.actual_latency_ms);
}

TEST(Arbiter, FullFrameChargedExclusively) {
  const gpu::DeviceProfile nano = gpu::jetson_nano();
  GpuArbiter arbiter;
  arbiter.begin_tick();
  arbiter.submit(0, 0, nano, work({}, /*full=*/true));
  arbiter.submit(1, 0, nano, work({}, /*full=*/true));
  const TickPlan plan = arbiter.plan_tick();
  ASSERT_EQ(plan.shares.size(), 2u);
  // Full frames never merge: each session pays its own device's full cost,
  // and no partial-frame batches exist on either side.
  EXPECT_DOUBLE_EQ(plan.shares[0].attributed_ms, nano.full_frame_ms());
  EXPECT_DOUBLE_EQ(plan.shares[1].attributed_ms, nano.full_frame_ms());
  EXPECT_EQ(plan.shared_batches, 0);
  EXPECT_EQ(plan.isolated_batches, 0);
  EXPECT_DOUBLE_EQ(plan.shared_busy_ms, 2.0 * nano.full_frame_ms());
  EXPECT_DOUBLE_EQ(plan.isolated_busy_ms, plan.shared_busy_ms);
}

TEST(Arbiter, CrossSessionMergeSavesBatchesAndLatency) {
  // Size class 2 on the nano has batch limit 2: two sessions each submitting
  // one such task merge into a single full batch instead of two half-full
  // ones.
  const gpu::DeviceProfile nano = gpu::jetson_nano();
  GpuArbiter arbiter;
  arbiter.begin_tick();
  arbiter.submit(0, 0, nano, work({2}));
  arbiter.submit(1, 0, nano, work({2}));
  const TickPlan plan = arbiter.plan_tick();

  EXPECT_EQ(plan.shared_batches, 1);
  EXPECT_EQ(plan.isolated_batches, 2);
  const double full_batch = nano.actual_batch_latency_ms(2, 2);
  const double half_batch = nano.actual_batch_latency_ms(2, 1);
  EXPECT_DOUBLE_EQ(plan.shared_busy_ms, full_batch);
  EXPECT_DOUBLE_EQ(plan.isolated_busy_ms, 2.0 * half_batch);
  EXPECT_LT(plan.shared_busy_ms, plan.isolated_busy_ms);
  // Equal counts split the shared batch evenly, and each session's share is
  // cheaper than running its own under-filled batch.
  EXPECT_DOUBLE_EQ(plan.shares[0].attributed_ms, 0.5 * full_batch);
  EXPECT_DOUBLE_EQ(plan.shares[1].attributed_ms, 0.5 * full_batch);
  EXPECT_LT(plan.shares[0].attributed_ms, plan.shares[0].isolated_ms);
}

TEST(Arbiter, DifferentDeviceClassesNeverMerge) {
  GpuArbiter arbiter;
  const gpu::DeviceProfile nano = gpu::jetson_nano();
  const gpu::DeviceProfile xavier = gpu::jetson_xavier();
  arbiter.begin_tick();
  arbiter.submit(0, 0, nano, work({1, 1}));
  arbiter.submit(1, 0, xavier, work({1, 1}));
  const TickPlan plan = arbiter.plan_tick();
  // One batch per device class either way: pooling only amortizes within a
  // class, so shared and isolated plans coincide.
  EXPECT_EQ(plan.shared_batches, plan.isolated_batches);
  EXPECT_DOUBLE_EQ(plan.shared_busy_ms, plan.isolated_busy_ms);
  EXPECT_DOUBLE_EQ(plan.shares[0].attributed_ms, plan.shares[0].isolated_ms);
  EXPECT_DOUBLE_EQ(plan.shares[1].attributed_ms, plan.shares[1].isolated_ms);
}

TEST(Arbiter, AttributionConservesTotalBusyTime) {
  const gpu::DeviceProfile nano = gpu::jetson_nano();
  const gpu::DeviceProfile xavier = gpu::jetson_xavier();
  GpuArbiter arbiter;
  arbiter.begin_tick();
  arbiter.submit(0, 0, nano, work({0, 0, 1, 2}, /*full=*/true));
  arbiter.submit(0, 1, xavier, work({3, 3, 3}));
  arbiter.submit(1, 0, nano, work({0, 1, 1}));
  arbiter.submit(2, 0, xavier, work({3}, /*full=*/true));
  const TickPlan plan = arbiter.plan_tick();

  double attributed = 0.0;
  for (const Attribution& a : plan.shares) attributed += a.attributed_ms;
  EXPECT_NEAR(attributed, plan.shared_busy_ms, 1e-9);
  EXPECT_LE(plan.shared_batches, plan.isolated_batches);
  EXPECT_LE(plan.shared_busy_ms, plan.isolated_busy_ms + 1e-9);
}

TEST(Arbiter, BeginTickDiscardsPreviousSubmissions) {
  const gpu::DeviceProfile nano = gpu::jetson_nano();
  GpuArbiter arbiter;
  arbiter.begin_tick();
  arbiter.submit(0, 0, nano, work({0}));
  EXPECT_EQ(arbiter.submission_count(), 1u);
  arbiter.begin_tick();
  EXPECT_EQ(arbiter.submission_count(), 0u);
  EXPECT_TRUE(arbiter.plan_tick().shares.empty());
}

// --------------------------------------------------- elastic device pools --

TEST(Arbiter, DevicePoolDrainsQueueingDelay) {
  // Two sessions submit disjoint size classes -> two merged batches on the
  // nano class. On one device the second batch in plan order waits for the
  // first; its owner is charged exactly that wait as queueing delay. A
  // second device removes the contention entirely.
  const gpu::DeviceProfile nano = gpu::jetson_nano();
  GpuArbiter arbiter;
  arbiter.begin_tick();
  arbiter.submit(0, 0, nano, work({0}));
  arbiter.submit(1, 0, nano, work({2}));

  const TickPlan serial_plan = arbiter.plan_tick();
  const double lat0 = nano.actual_batch_latency_ms(0, 1);
  ASSERT_EQ(serial_plan.shares.size(), 2u);
  EXPECT_DOUBLE_EQ(serial_plan.shares[0].queue_ms, 0.0);
  EXPECT_DOUBLE_EQ(serial_plan.shares[1].queue_ms, lat0);
  EXPECT_DOUBLE_EQ(serial_plan.queue_ms_total, lat0);

  arbiter.set_device_count(nano.name(), 2);
  EXPECT_EQ(arbiter.device_count(nano.name()), 2);
  const TickPlan pooled_plan = arbiter.plan_tick();
  EXPECT_DOUBLE_EQ(pooled_plan.shares[0].queue_ms, 0.0);
  EXPECT_DOUBLE_EQ(pooled_plan.shares[1].queue_ms, 0.0);
  EXPECT_DOUBLE_EQ(pooled_plan.queue_ms_total, 0.0);
  // Attribution (busy time) is pool-size independent; only waiting changes.
  EXPECT_DOUBLE_EQ(pooled_plan.shares[1].attributed_ms,
                   serial_plan.shares[1].attributed_ms);
  EXPECT_DOUBLE_EQ(pooled_plan.shared_busy_ms, serial_plan.shared_busy_ms);
}

TEST(Arbiter, LoneSubmissionHasZeroQueueOnAnyPoolSize) {
  const gpu::DeviceProfile nano = gpu::jetson_nano();
  for (int devices = 1; devices <= 3; ++devices) {
    GpuArbiter arbiter;
    arbiter.set_device_count(nano.name(), devices);
    arbiter.begin_tick();
    arbiter.submit(0, 0, nano, work({0, 1, 2, 2, 3}, /*full=*/true));
    const TickPlan plan = arbiter.plan_tick();
    // Exactly zero, not approximately: the fleet-of-one identity requires
    // the lone schedule to accumulate in attribution order.
    EXPECT_DOUBLE_EQ(plan.shares[0].queue_ms, 0.0) << devices;
    EXPECT_DOUBLE_EQ(plan.queue_ms_total, 0.0) << devices;
  }
}

TEST(FleetElasticity, ScaleDevicesTracksPoolsAndEmitsEvents) {
  Fleet fleet;
  runtime::TraceRecorder trace;
  fleet.attach_trace(&trace);
  ASSERT_TRUE(fleet.admit(spec("a", 5)).admitted);

  // S2 registers the xavier and nano classes at one device each.
  FleetSnapshot snap = fleet.snapshot();
  ASSERT_EQ(snap.device_pools.size(), 2u);
  for (const auto& [name, count] : snap.device_pools) EXPECT_EQ(count, 1);

  const std::string device_class = snap.device_pools.front().first;
  EXPECT_EQ(fleet.scale_devices(device_class, +2), 3);
  EXPECT_EQ(fleet.scale_devices(device_class, -1), 2);
  // Pools never shrink below one device.
  EXPECT_EQ(fleet.scale_devices(device_class, -10), 1);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kDeviceScale), 3u);

  snap = fleet.snapshot();
  for (const auto& [name, count] : snap.device_pools)
    EXPECT_EQ(count, 1) << name;
}

// --------------------------------------------------------- batch splitting --

TEST(Arbiter, SplitShedsLowestWeightAndConservesBusy) {
  // Merged class-2 counts 3 + 1 plan as two full batches (limit 2). The
  // high-weight session misses a sub-batch SLO, so the arbiter splits the
  // last batch: half its count (1 task) is shed from the lowest-weight
  // contributor and the class re-plans as [2, 1].
  const gpu::DeviceProfile nano = gpu::jetson_nano();
  GpuArbiter arbiter;
  arbiter.begin_tick();
  arbiter.submit(0, 0, nano, work({2, 2, 2}), /*weight=*/1.0);
  arbiter.submit(1, 0, nano, work({2}), /*weight=*/2.0);

  TickContext ctx;
  ctx.allow_split = true;
  ctx.slo_ms = 0.25 * nano.actual_batch_latency_ms(2, 2);  // force a miss
  const TickPlan plan = arbiter.plan_tick(ctx);

  EXPECT_EQ(plan.splits, 1);
  ASSERT_EQ(plan.deferred.size(), 1u);
  EXPECT_EQ(plan.deferred[0].session, 0);  // lowest weight sheds first
  EXPECT_EQ(plan.deferred[0].size_class, 2);
  EXPECT_EQ(plan.deferred[0].count, 1);
  // The tick charges exactly the batches it executes: [2] + [1].
  const double expected_busy = nano.actual_batch_latency_ms(2, 2) +
                               nano.actual_batch_latency_ms(2, 1);
  EXPECT_DOUBLE_EQ(plan.shared_busy_ms, expected_busy);
  double attributed = 0.0;
  for (const Attribution& a : plan.shares) attributed += a.attributed_ms;
  EXPECT_NEAR(attributed, plan.shared_busy_ms, 1e-9);

  // Without permission (or without an SLO) the same submissions never split.
  EXPECT_EQ(arbiter.plan_tick().splits, 0);
  TickContext no_split = ctx;
  no_split.allow_split = false;
  EXPECT_EQ(arbiter.plan_tick(no_split).splits, 0);
}

TEST(Arbiter, SplitAttributionConservesAcrossRandomSeeds) {
  // Randomized conservation sweep: whatever the split decisions, the sum of
  // per-submission attributed_ms must equal the executed busy time, and
  // re-submitting the deferred slices next tick conserves the total demand.
  const gpu::DeviceProfile nano = gpu::jetson_nano();
  const gpu::DeviceProfile xavier = gpu::jetson_xavier();
  for (std::uint32_t seed = 0; seed < 12; ++seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> n_tasks(0, 6);
    std::uniform_int_distribution<int> size_class(0, 3);
    std::uniform_real_distribution<double> weight(0.5, 3.0);

    GpuArbiter arbiter;
    arbiter.set_device_count(nano.name(), 1 + static_cast<int>(seed % 2));
    arbiter.begin_tick();
    std::size_t submitted = 0;
    for (int session = 0; session < 3; ++session) {
      for (int camera = 0; camera < 2; ++camera) {
        std::vector<geom::SizeClassId> tasks;
        const int n = n_tasks(rng);
        for (int t = 0; t < n; ++t)
          tasks.push_back(static_cast<geom::SizeClassId>(size_class(rng)));
        submitted += tasks.size();
        arbiter.submit(session, camera, camera == 0 ? nano : xavier,
                       work(std::move(tasks), session == 0), weight(rng));
      }
    }

    TickContext ctx;
    ctx.allow_split = true;
    ctx.slo_ms = 0.5;  // tight enough to trigger splits on busy seeds
    const TickPlan plan = arbiter.plan_tick(ctx);

    double attributed = 0.0;
    for (const Attribution& a : plan.shares) attributed += a.attributed_ms;
    EXPECT_NEAR(attributed, plan.shared_busy_ms, 1e-9) << "seed " << seed;

    std::size_t deferred = 0;
    for (const DeferredSlice& slice : plan.deferred) {
      EXPECT_GT(slice.count, 0);
      deferred += static_cast<std::size_t>(slice.count);
    }
    EXPECT_LE(deferred, submitted);
    EXPECT_EQ(plan.deferred.empty(), plan.splits == 0);

    // Next tick: run ONLY the deferred slices; the two ticks together must
    // charge at least as much as executing everything (a split never makes
    // work disappear) and every deferred task is attributed somewhere.
    if (deferred > 0) {
      arbiter.begin_tick();
      for (const DeferredSlice& slice : plan.deferred) {
        std::vector<geom::SizeClassId> tasks(
            static_cast<std::size_t>(slice.count), slice.size_class);
        arbiter.submit(slice.session, slice.camera,
                       slice.camera == 0 ? nano : xavier,
                       work(std::move(tasks)));
      }
      const TickPlan follow_up = arbiter.plan_tick();  // no further splitting
      EXPECT_EQ(follow_up.splits, 0);
      EXPECT_GT(follow_up.shared_busy_ms, 0.0);
      double follow_attributed = 0.0;
      for (const Attribution& a : follow_up.shares)
        follow_attributed += a.attributed_ms;
      EXPECT_NEAR(follow_attributed, follow_up.shared_busy_ms, 1e-9);
    }
  }
}

// --------------------------------------------------------- tick wheel --

TEST(FleetTickWheel, LcmWheelFiresExactNativeRates) {
  Fleet fleet;  // frame_period 100 ms -> base rate 10 Hz
  EXPECT_EQ(fleet.wheel_hz(), 10);

  SessionSpec ten = spec("ten", 5);
  ten.fps = 10;
  SessionSpec fifteen = spec("fifteen", 6);
  fifteen.fps = 15;
  SessionSpec thirty = spec("thirty", 7);
  thirty.fps = 30;

  ASSERT_TRUE(fleet.admit(ten).admitted);
  EXPECT_EQ(fleet.wheel_hz(), 10);  // 10 divides the wheel: no growth
  ASSERT_TRUE(fleet.admit(fifteen).admitted);
  EXPECT_EQ(fleet.wheel_hz(), 30);  // lcm(10, 15)
  ASSERT_TRUE(fleet.admit(thirty).admitted);
  EXPECT_EQ(fleet.wheel_hz(), 30);  // 30 already divides

  fleet.run(30);  // exactly one second of wheel ticks
  const FleetSnapshot snap = fleet.snapshot();
  ASSERT_EQ(snap.sessions.size(), 3u);
  EXPECT_EQ(snap.sessions[0].fps, 10);
  EXPECT_EQ(snap.sessions[0].frames, 10);
  EXPECT_EQ(snap.sessions[1].fps, 15);
  EXPECT_EQ(snap.sessions[1].frames, 15);
  EXPECT_EQ(snap.sessions[2].fps, 30);
  EXPECT_EQ(snap.sessions[2].frames, 30);
  EXPECT_EQ(snap.wheel_hz, 30);
}

TEST(FleetTickWheel, WheelGrowthMidRunPreservesCadence) {
  Fleet fleet;
  SessionSpec base = spec("base", 5);  // fps 0 -> fleet base rate (10)
  ASSERT_TRUE(fleet.admit(base).admitted);
  fleet.run(5);
  EXPECT_EQ(fleet.ticks(), 5);

  // Admitting 15 fps grows the wheel x3; the tick counter and the existing
  // session's period rescale so its cadence continues exactly.
  SessionSpec fast = spec("fast", 6);
  fast.fps = 15;
  ASSERT_TRUE(fleet.admit(fast).admitted);
  EXPECT_EQ(fleet.wheel_hz(), 30);
  EXPECT_EQ(fleet.ticks(), 15);

  fleet.run(30);  // one more second
  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_EQ(snap.sessions[0].frames, 5 + 10);
  EXPECT_EQ(snap.sessions[1].frames, 15);
}

TEST(FleetTickWheel, NegativeFpsIsRejected) {
  Fleet fleet;
  SessionSpec bad = spec("bad", 5);
  bad.fps = -3;
  const AdmitResult result = fleet.admit(bad);
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(fleet.snapshot().rejected, 1);
}

// ----------------------------------------------------- session config API --

TEST(FleetSessionApi, PerSessionFaultsImplyLossyTransport) {
  // The self-contained spec carries its own fault profile: a permanent
  // camera-0 dropout must flow into the session's transport without the
  // caller touching pipeline.faults.
  Fleet fleet;
  SessionSpec s = spec("faulty", 5);
  netsim::FaultConfig faults;
  faults.dropouts.push_back({0, 0, -1});  // camera 0 never comes back
  s.faults = faults;
  const AdmitResult admitted = fleet.admit(s);
  ASSERT_TRUE(admitted.admitted);
  ASSERT_TRUE(admitted.handle.valid());
  fleet.run(3);

  const runtime::PipelineResult result = fleet.result(admitted.handle);
  ASSERT_EQ(result.frames.size(), 3u);
  for (const runtime::FrameStats& f : result.frames)
    EXPECT_EQ(f.cameras_online, 1);  // S2 has 2 cameras; one is down
}

TEST(FleetSessionApi, PerSessionSloOverridesViolationAccounting) {
  // Two identical sessions, one with an impossible 0.001 ms personal SLO:
  // only that session accrues violations (the fleet-wide SLO is off).
  Fleet fleet;
  SessionSpec strict = spec("strict", 5);
  strict.slo_ms = 0.001;
  SessionSpec lax = spec("lax", 5);
  const AdmitResult strict_admit = fleet.admit(strict);
  const AdmitResult lax_admit = fleet.admit(lax);
  ASSERT_TRUE(strict_admit.admitted);
  ASSERT_TRUE(lax_admit.admitted);
  fleet.run(4);

  // Admission order is snapshot order; the handles confirm the mapping.
  const FleetSnapshot snap = fleet.snapshot();
  ASSERT_EQ(snap.sessions.size(), 2u);
  EXPECT_EQ(snap.sessions[0].handle, strict_admit.handle);
  EXPECT_EQ(snap.sessions[1].handle, lax_admit.handle);
  EXPECT_EQ(snap.sessions[0].slo_violations, 4);
  EXPECT_EQ(snap.sessions[1].slo_violations, 0);
  EXPECT_DOUBLE_EQ(snap.sessions[0].slo_ms, 0.001);
}

// ---------------------------------------------------------- re-admission --

TEST(FleetReadmission, RestoresRateThenMasksWithTraceEvents) {
  // SLO forces the second session onto the bottom ladder rung (masks + rate)
  // at admission. Permissive hysteresis thresholds let the periodic scan
  // restore one rung per interval once the first session is gone: full rate
  // first, then mask un-tightening — each with a session_readmit event.
  const double d = s2_static_demand_ms();
  FleetConfig cfg;
  cfg.slo_ms = 1.4 * d;
  cfg.assumed_tasks_per_camera = 0.0;
  cfg.readmit_interval = 5;
  cfg.readmit_low_water = 1e6;   // always scan
  cfg.readmit_high_water = 1e6;  // any projection fits
  Fleet fleet(cfg);
  runtime::TraceRecorder trace;
  fleet.attach_trace(&trace);

  const AdmitResult first = fleet.admit(spec("a", 5));
  ASSERT_TRUE(first.admitted);
  const AdmitResult second = fleet.admit(spec("b", 6));
  ASSERT_TRUE(second.admitted);
  EXPECT_TRUE(second.masks_tightened);
  EXPECT_TRUE(second.rate_halved);

  ASSERT_EQ(fleet.evict(first.handle), FleetStatus::kOk);
  fleet.run(5);  // first scan: rate rung restored
  FleetSnapshot snap = fleet.snapshot();
  EXPECT_EQ(snap.sessions[1].stride, 1);
  EXPECT_TRUE(snap.sessions[1].tight_masks);
  EXPECT_EQ(snap.readmitted, 1);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kSessionReadmit), 1u);

  fleet.run(5);  // second scan: mask rung restored
  snap = fleet.snapshot();
  EXPECT_EQ(snap.sessions[1].stride, 1);
  EXPECT_FALSE(snap.sessions[1].tight_masks);
  EXPECT_EQ(snap.readmitted, 2);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kSessionReadmit), 2u);

  // Fully restored: later scans are no-ops — restoration never oscillates
  // (degradation is applied only at admission).
  fleet.run(20);
  snap = fleet.snapshot();
  EXPECT_EQ(snap.readmitted, 2);
  EXPECT_EQ(snap.sessions[1].stride, 1);
  EXPECT_FALSE(snap.sessions[1].tight_masks);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kSessionReadmit), 2u);
}

TEST(FleetReadmission, HysteresisKeepsDegradationUnderLoad) {
  // With the low-water mark at zero the windowed busy never falls below the
  // band, so degradation stays sticky no matter how long the fleet runs —
  // no admit/degrade/readmit oscillation under square-wave load changes.
  const double d = s2_static_demand_ms();
  FleetConfig cfg;
  cfg.slo_ms = 1.6 * d;
  cfg.assumed_tasks_per_camera = 0.0;
  cfg.readmit_interval = 3;
  cfg.readmit_low_water = 0.0;
  Fleet fleet(cfg);

  const AdmitResult first = fleet.admit(spec("a", 5));
  ASSERT_TRUE(first.admitted);
  const AdmitResult second = fleet.admit(spec("b", 6));
  ASSERT_TRUE(second.admitted);
  EXPECT_TRUE(second.rate_halved);

  // Square-wave load: pause/resume the heavy tenant repeatedly.
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_EQ(fleet.pause(first.handle), FleetStatus::kOk);
    fleet.run(6);
    ASSERT_EQ(fleet.resume(first.handle), FleetStatus::kOk);
    fleet.run(6);
  }
  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_EQ(snap.readmitted, 0);
  EXPECT_EQ(snap.sessions[1].stride, 2);
}

TEST(FleetReadmission, ZeroIntervalKeepsDegradationSticky) {
  const double d = s2_static_demand_ms();
  FleetConfig cfg;
  cfg.slo_ms = 1.6 * d;
  cfg.assumed_tasks_per_camera = 0.0;
  cfg.readmit_interval = 0;  // re-admission disabled
  cfg.readmit_low_water = 1e6;
  cfg.readmit_high_water = 1e6;
  Fleet fleet(cfg);
  const AdmitResult first = fleet.admit(spec("a", 5));
  ASSERT_TRUE(first.admitted);
  const AdmitResult second = fleet.admit(spec("b", 6));
  ASSERT_TRUE(second.admitted);
  EXPECT_TRUE(second.rate_halved);
  ASSERT_EQ(fleet.evict(first.handle), FleetStatus::kOk);
  fleet.run(12);
  EXPECT_EQ(fleet.snapshot().readmitted, 0);
  EXPECT_EQ(fleet.snapshot().sessions[1].stride, 2);
}

// ---------------------------------------------------------- re-degrading --

TEST(FleetRedegrade, TightensMasksThenHalvesRateHighestIdFirst) {
  // High-water mark at zero: every scan sees mean busy above the mark, so
  // each interval applies exactly ONE degrade rung. Order is the mirror of
  // re-admission: masks tighten first (cheapest in latency), then the rate
  // halves; the highest session id degrades first so the longest-served
  // tenants keep quality longest. Each rung emits a session_redegrade event.
  const double d = s2_static_demand_ms();
  FleetConfig cfg;
  cfg.slo_ms = 100.0 * d;  // everything admits undegraded
  cfg.assumed_tasks_per_camera = 0.0;
  cfg.readmit_interval = 5;
  cfg.readmit_low_water = 0.0;
  cfg.readmit_high_water = 0.0;  // any busy at all exceeds the mark
  Fleet fleet(cfg);
  runtime::TraceRecorder trace;
  fleet.attach_trace(&trace);

  const AdmitResult first = fleet.admit(spec("a", 5));
  const AdmitResult second = fleet.admit(spec("b", 6));
  ASSERT_TRUE(first.admitted);
  ASSERT_TRUE(second.admitted);
  EXPECT_FALSE(second.masks_tightened);
  EXPECT_FALSE(second.rate_halved);

  fleet.run(5);  // scan 1: session 1 (highest id) tightens masks
  FleetSnapshot snap = fleet.snapshot();
  EXPECT_TRUE(snap.sessions[1].tight_masks);
  EXPECT_EQ(snap.sessions[1].stride, 1);
  EXPECT_FALSE(snap.sessions[0].tight_masks);
  EXPECT_EQ(snap.redegraded, 1);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kSessionRedegrade), 1u);

  fleet.run(5);  // scan 2: session 0 tightens masks
  snap = fleet.snapshot();
  EXPECT_TRUE(snap.sessions[0].tight_masks);
  EXPECT_EQ(snap.sessions[0].stride, 1);
  EXPECT_EQ(snap.redegraded, 2);

  fleet.run(5);  // scan 3: masks exhausted; session 1 halves its rate
  snap = fleet.snapshot();
  EXPECT_EQ(snap.sessions[1].stride, 2);
  EXPECT_EQ(snap.sessions[0].stride, 1);
  EXPECT_EQ(snap.redegraded, 3);

  fleet.run(5);  // scan 4: session 0 halves its rate
  snap = fleet.snapshot();
  EXPECT_EQ(snap.sessions[0].stride, 2);
  EXPECT_EQ(snap.redegraded, 4);

  // Ladder exhausted: further scans change nothing, and with the high-water
  // ceiling at zero nothing ever re-admits either.
  fleet.run(20);
  snap = fleet.snapshot();
  EXPECT_EQ(snap.redegraded, 4);
  EXPECT_EQ(snap.readmitted, 0);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kSessionRedegrade), 4u);
}

TEST(FleetRedegrade, HysteresisBandChangesNothingEitherWay) {
  // Mean busy sits between the water marks (low 0, high huge): neither the
  // re-admission path nor the re-degrade path may fire — the band is the
  // hysteresis that keeps rungs from flapping.
  const double d = s2_static_demand_ms();
  FleetConfig cfg;
  cfg.slo_ms = 100.0 * d;
  cfg.assumed_tasks_per_camera = 0.0;
  cfg.readmit_interval = 3;
  cfg.readmit_low_water = 0.0;
  cfg.readmit_high_water = 1e6;
  Fleet fleet(cfg);

  ASSERT_TRUE(fleet.admit(spec("a", 5)).admitted);
  ASSERT_TRUE(fleet.admit(spec("b", 6)).admitted);
  fleet.run(30);

  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_EQ(snap.redegraded, 0);
  EXPECT_EQ(snap.readmitted, 0);
  for (const SessionSnapshot& s : snap.sessions) {
    EXPECT_EQ(s.stride, 1);
    EXPECT_FALSE(s.tight_masks);
  }
}

TEST(FleetRedegrade, AllowDegradeOffDisablesTheDownLadder) {
  const double d = s2_static_demand_ms();
  FleetConfig cfg;
  cfg.slo_ms = 100.0 * d;
  cfg.assumed_tasks_per_camera = 0.0;
  cfg.allow_degrade = false;
  cfg.readmit_interval = 3;
  cfg.readmit_low_water = 0.0;
  cfg.readmit_high_water = 0.0;  // permanent pressure, but degrading is off
  Fleet fleet(cfg);

  ASSERT_TRUE(fleet.admit(spec("a", 5)).admitted);
  fleet.run(15);

  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_EQ(snap.redegraded, 0);
  EXPECT_EQ(snap.sessions[0].stride, 1);
  EXPECT_FALSE(snap.sessions[0].tight_masks);
}

// ------------------------------------------------------------- admission --

TEST(FleetAdmission, DegradeLadderThenReject) {
  const double d = s2_static_demand_ms();
  FleetConfig cfg;
  cfg.slo_ms = 1.6 * d;
  cfg.assumed_tasks_per_camera = 0.0;
  Fleet fleet(cfg);
  runtime::TraceRecorder trace;
  fleet.attach_trace(&trace);

  // First session fits undegraded (d <= 1.6 d).
  const AdmitResult first = fleet.admit(spec("a", 5));
  EXPECT_TRUE(first.admitted);
  EXPECT_FALSE(first.masks_tightened);
  EXPECT_FALSE(first.rate_halved);
  EXPECT_NEAR(first.projected_ms, d, 1e-9);

  // Second exceeds the SLO (2 d); mask tightening (1.75 d) still exceeds,
  // rate halving (1.5 d) fits.
  const AdmitResult second = fleet.admit(spec("b", 6));
  EXPECT_TRUE(second.admitted);
  EXPECT_FALSE(second.masks_tightened);
  EXPECT_TRUE(second.rate_halved);
  EXPECT_NEAR(second.projected_ms, 1.5 * d, 1e-9);

  // Third cannot fit even fully degraded (1.5 d + 0.375 d > 1.6 d).
  const AdmitResult third = fleet.admit(spec("c", 7));
  EXPECT_FALSE(third.admitted);
  EXPECT_FALSE(third.handle.valid());
  EXPECT_FALSE(third.reason.empty());

  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_EQ(snap.admitted, 2);
  EXPECT_EQ(snap.rejected, 1);
  ASSERT_EQ(snap.sessions.size(), 2u);
  EXPECT_EQ(snap.sessions[0].stride, 1);
  EXPECT_EQ(snap.sessions[1].stride, 2);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kSessionAdmit), 2u);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kSessionReject), 1u);
}

TEST(FleetAdmission, MaskTighteningIsTheFirstRung) {
  const double d = s2_static_demand_ms();
  FleetConfig cfg;
  cfg.slo_ms = 1.8 * d;
  cfg.assumed_tasks_per_camera = 0.0;
  Fleet fleet(cfg);
  ASSERT_TRUE(fleet.admit(spec("a", 5)).admitted);
  // 2 d > 1.8 d, but tightened masks (d + 0.75 d = 1.75 d) fit without
  // touching the frame rate.
  const AdmitResult second = fleet.admit(spec("b", 6));
  EXPECT_TRUE(second.admitted);
  EXPECT_TRUE(second.masks_tightened);
  EXPECT_FALSE(second.rate_halved);
  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_TRUE(snap.sessions[1].tight_masks);
  EXPECT_EQ(snap.sessions[1].stride, 1);
}

TEST(FleetAdmission, NoDegradeMeansOutrightRejection) {
  const double d = s2_static_demand_ms();
  FleetConfig cfg;
  cfg.slo_ms = 1.9 * d;
  cfg.assumed_tasks_per_camera = 0.0;
  cfg.allow_degrade = false;
  Fleet fleet(cfg);
  ASSERT_TRUE(fleet.admit(spec("a", 5)).admitted);
  const AdmitResult second = fleet.admit(spec("b", 6));
  EXPECT_FALSE(second.admitted);
  EXPECT_EQ(fleet.snapshot().rejected, 1);
}

TEST(FleetAdmission, NoSloAdmitsEverything) {
  Fleet fleet;  // slo_ms = 0: admission control off
  EXPECT_TRUE(fleet.admit(spec("a", 5)).admitted);
  EXPECT_TRUE(fleet.admit(spec("b", 6)).admitted);
  EXPECT_EQ(fleet.session_count(), 2u);
  EXPECT_EQ(fleet.snapshot().rejected, 0);
}

TEST(FleetAdmission, DetectOrTrackPolicyScalesPartialDemand) {
  // A session running a detect-or-track policy submits partial-frame work
  // on only expected_detect_ratio of its regular frames, so the admission
  // estimator scales the partial term by exactly that factor; full-frame
  // key inspections are never skipped and stay un-scaled.
  FleetConfig cfg;
  cfg.slo_ms = 1e6;  // admission on, nothing rejected
  cfg.assumed_tasks_per_camera = 2.0;

  Fleet fixed_fleet(cfg);
  const AdmitResult fixed = fixed_fleet.admit(spec("fixed", 5));
  ASSERT_TRUE(fixed.admitted);

  Fleet tracked_fleet(cfg);
  SessionSpec tracked_spec = spec("tracked", 5);
  tracked_spec.pipeline.frame_policy.kind = policy::PolicyKind::kHeuristic;
  tracked_spec.pipeline.frame_policy.expected_detect_ratio = 0.5;
  const AdmitResult tracked = tracked_fleet.admit(tracked_spec);
  ASSERT_TRUE(tracked.admitted);

  EXPECT_LT(tracked.projected_ms, fixed.projected_ms);
  const double partial = fixed.projected_ms - s2_static_demand_ms();
  ASSERT_GT(partial, 0.0);
  EXPECT_NEAR(tracked.projected_ms, s2_static_demand_ms() + 0.5 * partial,
              1e-9);
}

TEST(FleetAdmission, DispatchOverheadRaisesProjectedDemand) {
  // With one batch firing per camera-frame, a fixed-cadence S2 deployment
  // over two single-device pools is charged exactly one overhead per
  // device per frame on top of the ideal estimate.
  FleetConfig cfg;
  cfg.slo_ms = 1e6;
  cfg.assumed_tasks_per_camera = 1.0;
  Fleet ideal(cfg);
  cfg.dispatch_overhead_ms = 2.0;
  Fleet charged(cfg);

  const AdmitResult base = ideal.admit(spec("a", 5));
  const AdmitResult loaded = charged.admit(spec("a", 5));
  ASSERT_TRUE(base.admitted);
  ASSERT_TRUE(loaded.admitted);
  EXPECT_NEAR(loaded.projected_ms,
              base.projected_ms + 2 * cfg.dispatch_overhead_ms, 1e-9);
}

TEST(FleetAdmission, WiderPoolsHalveIncrementalDemand) {
  // Doubling every device pool halves the per-frame cost the estimator
  // charges the NEXT deployment (already-admitted sessions keep the static
  // estimate taken at their own admit time).
  FleetConfig cfg;
  cfg.slo_ms = 1e6;
  cfg.assumed_tasks_per_camera = 1.0;
  Fleet fleet(cfg);
  const AdmitResult first = fleet.admit(spec("a", 5));
  ASSERT_TRUE(first.admitted);

  for (const auto& [name, count] : fleet.snapshot().device_pools)
    EXPECT_EQ(fleet.scale_devices(name, +1), count + 1);

  const AdmitResult second = fleet.admit(spec("b", 6));
  ASSERT_TRUE(second.admitted);
  EXPECT_NEAR(second.projected_ms - first.projected_ms,
              0.5 * first.projected_ms, 1e-9);
}

// ------------------------------------------------------------- lifecycle --

TEST(FleetLifecycle, PauseResumeEvictTransitions) {
  Fleet fleet;
  runtime::TraceRecorder trace;
  fleet.attach_trace(&trace);
  const SessionHandle h = fleet.admit(spec("a", 5)).handle;
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(fleet.state(h), SessionState::kActive);

  fleet.step();
  EXPECT_EQ(fleet.result(h).frames.size(), 1u);

  // Paused sessions consume no ticks.
  EXPECT_EQ(fleet.pause(h), FleetStatus::kOk);
  EXPECT_EQ(fleet.state(h), SessionState::kPaused);
  EXPECT_EQ(fleet.pause(h), FleetStatus::kInvalidState);  // already paused
  fleet.run(2);
  EXPECT_EQ(fleet.result(h).frames.size(), 1u);

  EXPECT_EQ(fleet.resume(h), FleetStatus::kOk);
  EXPECT_EQ(fleet.resume(h), FleetStatus::kInvalidState);  // already active
  fleet.step();
  EXPECT_EQ(fleet.result(h).frames.size(), 2u);

  // Eviction is final; the result survives the pipeline's destruction.
  EXPECT_EQ(fleet.evict(h), FleetStatus::kOk);
  EXPECT_EQ(fleet.state(h), SessionState::kEvicted);
  EXPECT_EQ(fleet.evict(h), FleetStatus::kInvalidState);
  EXPECT_EQ(fleet.pause(h), FleetStatus::kInvalidState);
  EXPECT_EQ(fleet.resume(h), FleetStatus::kInvalidState);
  EXPECT_EQ(fleet.session_count(), 0u);
  EXPECT_EQ(fleet.result(h).frames.size(), 2u);
  fleet.step();
  EXPECT_EQ(fleet.result(h).frames.size(), 2u);

  EXPECT_EQ(trace.count(runtime::TraceEventType::kSessionPause), 1u);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kSessionResume), 1u);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kSessionEvict), 1u);

  // Unknown ids: every transition refuses typed, state reads evicted.
  const SessionHandle unknown{99, 1};
  EXPECT_EQ(fleet.pause(unknown), FleetStatus::kUnknownSession);
  EXPECT_EQ(fleet.evict(unknown), FleetStatus::kUnknownSession);
  EXPECT_EQ(fleet.state(unknown), SessionState::kEvicted);
}

TEST(FleetLifecycle, ReleaseRecyclesTheSlotUnderABumpedGeneration) {
  // release() is the end of the handle's life: the retained result is
  // dropped, the slot goes back on the free list, and the NEXT admission
  // reuses it under gen + 1 — so the old handle (and any copy) is detected
  // as stale instead of silently addressing the new tenant.
  Fleet fleet;
  const SessionHandle h = fleet.admit(spec("a", 5)).handle;
  ASSERT_TRUE(h.valid());
  fleet.run(2);

  // Releasing a live session is refused; evict first.
  EXPECT_EQ(fleet.release(h), FleetStatus::kInvalidState);
  ASSERT_EQ(fleet.evict(h), FleetStatus::kOk);
  FleetStatus status = FleetStatus::kOk;
  EXPECT_EQ(fleet.result(h, &status).frames.size(), 2u);
  EXPECT_EQ(status, FleetStatus::kOk);

  ASSERT_EQ(fleet.release(h), FleetStatus::kOk);
  EXPECT_EQ(fleet.release(h), FleetStatus::kStaleHandle);  // idempotent-safe
  EXPECT_TRUE(fleet.result(h, &status).frames.empty());
  EXPECT_EQ(status, FleetStatus::kStaleHandle);
  EXPECT_EQ(fleet.pause(h), FleetStatus::kStaleHandle);
  EXPECT_EQ(fleet.state(h), SessionState::kEvicted);

  // The recycled slot reuses the id with a bumped generation; the new
  // tenant is addressable while the old handle stays permanently stale.
  const SessionHandle next = fleet.admit(spec("b", 6)).handle;
  ASSERT_TRUE(next.valid());
  EXPECT_EQ(next.id, h.id);
  EXPECT_EQ(next.gen, h.gen + 1);
  EXPECT_EQ(fleet.state(next), SessionState::kActive);
  EXPECT_EQ(fleet.pause(h), FleetStatus::kStaleHandle);
}

// -------------------------------------------------------------- dispatch --

TEST(FleetDispatch, WeightedPriorityStarvesTheLightSession) {
  // SLO admits both sessions undegraded on the static estimate (2 d fits),
  // but once a session has run a key frame its observed demand (full-frame
  // inspections on both cameras) exceeds the whole SLO, so every later tick
  // can run exactly one session. Weighted dispatch always picks the heavy
  // one; the light session is deferred from tick 1 on.
  const double d = s2_static_demand_ms();
  FleetConfig cfg;
  cfg.slo_ms = 2.0 * d + 1.0;
  cfg.assumed_tasks_per_camera = 0.0;
  cfg.dispatch = DispatchPolicy::kWeightedPriority;
  Fleet fleet(cfg);
  runtime::TraceRecorder trace;
  fleet.attach_trace(&trace);
  ASSERT_TRUE(fleet.admit(spec("heavy", 5, /*weight=*/2.0)).admitted);
  ASSERT_TRUE(fleet.admit(spec("light", 6, /*weight=*/1.0)).admitted);

  fleet.run(8);
  const FleetSnapshot snap = fleet.snapshot();
  ASSERT_EQ(snap.sessions.size(), 2u);
  EXPECT_EQ(snap.sessions[0].frames, 8);
  EXPECT_EQ(snap.sessions[0].deferred_ticks, 0);
  EXPECT_EQ(snap.sessions[1].frames, 1);  // only the un-contended tick 0
  EXPECT_EQ(snap.sessions[1].deferred_ticks, 7);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kSessionDefer), 7u);
  EXPECT_GT(snap.mean_queue_depth, 0.0);
}

TEST(FleetDispatch, RoundRobinSharesTheDeferralBurden) {
  const double d = s2_static_demand_ms();
  FleetConfig cfg;
  cfg.slo_ms = 2.0 * d + 1.0;
  cfg.assumed_tasks_per_camera = 0.0;
  cfg.dispatch = DispatchPolicy::kRoundRobin;
  Fleet fleet(cfg);
  ASSERT_TRUE(fleet.admit(spec("a", 5)).admitted);
  ASSERT_TRUE(fleet.admit(spec("b", 6)).admitted);

  fleet.run(8);
  const FleetSnapshot snap = fleet.snapshot();
  // Tick 0 runs both (static estimates fit); afterwards the rotation
  // alternates which session runs, so frames and deferrals split evenly.
  EXPECT_GE(snap.sessions[0].frames, 4);
  EXPECT_GE(snap.sessions[1].frames, 4);
  EXPECT_GT(snap.sessions[0].deferred_ticks, 0);
  EXPECT_GT(snap.sessions[1].deferred_ticks, 0);
  EXPECT_LE(std::abs(snap.sessions[0].frames - snap.sessions[1].frames), 1);
}

TEST(FleetDispatch, ParseDispatchNames) {
  EXPECT_EQ(parse_dispatch("rr"), DispatchPolicy::kRoundRobin);
  EXPECT_EQ(parse_dispatch("Round-Robin"), DispatchPolicy::kRoundRobin);
  EXPECT_EQ(parse_dispatch("weighted"), DispatchPolicy::kWeightedPriority);
  EXPECT_EQ(parse_dispatch("weighted-priority"),
            DispatchPolicy::kWeightedPriority);
  EXPECT_FALSE(parse_dispatch("fifo").has_value());
}

// --------------------------------------------------------------- rollups --

TEST(FleetRollups, CrossSessionBatchingBeatsIsolatedDevices) {
  // Two identical S2 deployments share one xavier-class and one nano-class
  // queue: their regular-frame task multisets merge into fewer, fuller
  // batches than dedicated per-session devices would run.
  Fleet fleet;
  ASSERT_TRUE(fleet.admit(spec("a", 5)).admitted);
  ASSERT_TRUE(fleet.admit(spec("b", 6)).admitted);
  fleet.run(15);

  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_EQ(snap.ticks, 15);
  EXPECT_LT(snap.shared_batches, snap.isolated_batches);
  EXPECT_LT(snap.shared_busy_ms, snap.isolated_busy_ms);
  EXPECT_GT(snap.mean_occupancy, 0.0);
  EXPECT_GT(snap.p95_tick_busy_ms, 0.0);
  for (const SessionSnapshot& s : snap.sessions) {
    EXPECT_EQ(s.frames, 15);
    EXPECT_GT(s.p50_ms, 0.0);
    EXPECT_LE(s.p50_ms, s.p95_ms);
    EXPECT_LE(s.p95_ms, s.p99_ms);
  }
}

TEST(FleetRollups, SnapshotJsonRoundTrips) {
  Fleet fleet;
  ASSERT_TRUE(fleet.admit(spec("json-session", 5)).admitted);
  fleet.run(3);
  const std::string text = fleet.snapshot().to_json();
  std::string error;
  const auto doc = util::Json::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const util::Json* fleet_obj = doc->find("fleet");
  ASSERT_NE(fleet_obj, nullptr);
  EXPECT_DOUBLE_EQ(fleet_obj->number_or("ticks", -1.0), 3.0);
  EXPECT_GT(fleet_obj->number_or("shared_batches", -1.0), 0.0);
  const util::Json* sessions = doc->find("sessions");
  ASSERT_NE(sessions, nullptr);
  ASSERT_EQ(sessions->as_array().size(), 1u);
  const util::Json& s = sessions->as_array()[0];
  EXPECT_EQ(s.string_or("name", ""), "json-session");
  EXPECT_EQ(s.string_or("state", ""), "active");
  EXPECT_DOUBLE_EQ(s.number_or("frames", -1.0), 3.0);
}

// ----------------------------------------------------------- determinism --

TEST(FleetDeterminism, IdenticalAcrossThreadCounts) {
  auto build = [](int threads) {
    FleetConfig cfg;
    cfg.threads = threads;
    auto fleet = std::make_unique<Fleet>(cfg);
    EXPECT_TRUE(fleet->admit(spec("a", 21)).admitted);
    EXPECT_TRUE(fleet->admit(spec("b", 22)).admitted);
    fleet->run(12);
    return fleet;
  };
  const auto narrow = build(1);
  const auto wide = build(8);

  const FleetSnapshot sn = narrow->snapshot();
  const FleetSnapshot sw = wide->snapshot();
  EXPECT_EQ(sn.shared_batches, sw.shared_batches);
  EXPECT_EQ(sn.isolated_batches, sw.isolated_batches);
  EXPECT_DOUBLE_EQ(sn.shared_busy_ms, sw.shared_busy_ms);
  EXPECT_DOUBLE_EQ(sn.isolated_busy_ms, sw.isolated_busy_ms);
  ASSERT_EQ(sn.sessions.size(), sw.sessions.size());
  for (std::size_t i = 0; i < sn.sessions.size(); ++i) {
    EXPECT_EQ(sn.sessions[i].frames, sw.sessions[i].frames);
    EXPECT_DOUBLE_EQ(sn.sessions[i].mean_ms, sw.sessions[i].mean_ms);
    EXPECT_DOUBLE_EQ(sn.sessions[i].p95_ms, sw.sessions[i].p95_ms);
    EXPECT_DOUBLE_EQ(sn.sessions[i].object_recall,
                     sw.sessions[i].object_recall);
  }
  for (std::size_t i = 0; i < sn.sessions.size(); ++i) {
    const runtime::PipelineResult rn = narrow->result(sn.sessions[i].handle);
    const runtime::PipelineResult rw = wide->result(sw.sessions[i].handle);
    EXPECT_DOUBLE_EQ(rn.object_recall, rw.object_recall);
    ASSERT_EQ(rn.frames.size(), rw.frames.size());
    for (std::size_t f = 0; f < rn.frames.size(); ++f) {
      EXPECT_DOUBLE_EQ(rn.frames[f].slowest_infer_ms,
                       rw.frames[f].slowest_infer_ms);
      EXPECT_EQ(rn.frames[f].tracked_objects, rw.frames[f].tracked_objects);
    }
  }
}

}  // namespace
}  // namespace mvs::fleet

#include <gtest/gtest.h>

#include "core/distributed.hpp"
#include "core/masks.hpp"

namespace mvs::core {
namespace {

/// Synthetic deployment: two 200x100 cameras; the right half of camera 0 and
/// the left half of camera 1 observe the same world region (an "overlap").
std::vector<std::pair<int, int>> dims() { return {{200, 100}, {200, 100}}; }

CellCoverageFn half_overlap_coverage() {
  return [](int cam, geom::Vec2 center) -> std::vector<int> {
    const bool overlap = (cam == 0) ? center.x >= 100.0 : center.x < 100.0;
    if (overlap) return {0, 1};
    return {cam};
  };
}

RegionKeyFn mirror_region_key() {
  // Consistent world key: overlap cells map to a shared coordinate frame.
  return [](int cam, geom::Vec2 center) -> std::uint64_t {
    double wx = (cam == 0) ? center.x : center.x + 100.0;
    return static_cast<std::uint64_t>(wx / 20.0) * 131 +
           static_cast<std::uint64_t>(center.y / 20.0);
  };
}

TEST(PriorityMasks, ExclusiveCellsAlwaysOwned) {
  const CameraMasks masks =
      build_priority_masks(dims(), 20, half_overlap_coverage(), {1, 0});
  // Camera 0's left half is exclusive: owned regardless of priority.
  EXPECT_TRUE(masks.owns(0, {10, 10}));
  EXPECT_TRUE(masks.owns(1, {150, 50}));
}

TEST(PriorityMasks, OverlapGoesToHigherPriority) {
  // Priority: camera 1 first.
  const CameraMasks masks =
      build_priority_masks(dims(), 20, half_overlap_coverage(), {1, 0});
  EXPECT_FALSE(masks.owns(0, {150, 50}));  // overlap cell on cam 0
  EXPECT_TRUE(masks.owns(1, {50, 50}));    // overlap cell on cam 1

  // Flip priority.
  const CameraMasks flipped =
      build_priority_masks(dims(), 20, half_overlap_coverage(), {0, 1});
  EXPECT_TRUE(flipped.owns(0, {150, 50}));
  EXPECT_FALSE(flipped.owns(1, {50, 50}));
}

TEST(PriorityMasks, OwnedFractionReflectsPriority) {
  const CameraMasks masks =
      build_priority_masks(dims(), 20, half_overlap_coverage(), {0, 1});
  EXPECT_DOUBLE_EQ(masks.owned_fraction(0), 1.0);   // owns everything it sees
  EXPECT_NEAR(masks.owned_fraction(1), 0.5, 0.01);  // only its exclusive half
}

TEST(PowerWeightedMasks, ProportionalSplit) {
  const std::vector<gpu::DeviceProfile> cams = {gpu::jetson_xavier(),
                                                gpu::jetson_nano()};
  const CameraMasks masks = build_power_weighted_masks(
      dims(), 10, half_overlap_coverage(), mirror_region_key(), cams);
  // Xavier's power share is ~86%; its overlap ownership must exceed Nano's.
  const double xavier_share = masks.owned_fraction(0);
  const double nano_share = masks.owned_fraction(1);
  EXPECT_GT(xavier_share, 0.85);  // exclusive 0.5 + most of the overlap
  EXPECT_LT(nano_share, 0.75);
  EXPECT_GT(nano_share, 0.5);  // still owns its exclusive half
}

TEST(PowerWeightedMasks, ConsistentAcrossCameras) {
  // For the same world region (shared key), exactly one camera owns it.
  const std::vector<gpu::DeviceProfile> cams = {gpu::jetson_xavier(),
                                                gpu::jetson_nano()};
  const CameraMasks masks = build_power_weighted_masks(
      dims(), 20, half_overlap_coverage(), mirror_region_key(), cams);
  // Overlap point: world x in [100, 200) maps to cam0 x-100+100 and cam1 x.
  for (double wx = 105.0; wx < 195.0; wx += 20.0) {
    for (double y = 10.0; y < 100.0; y += 20.0) {
      const bool own0 = masks.owns(0, {wx, y});        // cam0 pixel = world
      const bool own1 = masks.owns(1, {wx - 100.0, y});  // cam1 pixel
      EXPECT_NE(own0, own1) << "world x=" << wx << " y=" << y;
    }
  }
}

TEST(DistributedStage, AdoptFollowsMask) {
  const CameraMasks masks =
      build_priority_masks(dims(), 20, half_overlap_coverage(), {1, 0});
  DistributedStage stage(masks, {1, 0});
  ASSERT_TRUE(stage.valid());
  // New object in cam 0's exclusive half: adopt.
  EXPECT_TRUE(stage.should_adopt_new(0, geom::BBox{5, 5, 10, 10}));
  // New object in the overlap: cam 1 has priority.
  EXPECT_FALSE(stage.should_adopt_new(0, geom::BBox{150, 40, 10, 10}));
  EXPECT_TRUE(stage.should_adopt_new(1, geom::BBox{50, 40, 10, 10}));
}

TEST(DistributedStage, TakeoverPicksHighestPriority) {
  const CameraMasks masks =
      build_priority_masks(dims(), 20, half_overlap_coverage(), {1, 0});
  DistributedStage stage(masks, {1, 0});
  EXPECT_EQ(stage.takeover_camera({0, 1}), 1);
  EXPECT_EQ(stage.takeover_camera({0}), 0);
  EXPECT_EQ(stage.takeover_camera({}), -1);
}

TEST(DistributedStage, PriorityRank) {
  const CameraMasks masks =
      build_priority_masks(dims(), 20, half_overlap_coverage(), {1, 0});
  DistributedStage stage(masks, {1, 0});
  EXPECT_EQ(stage.priority_rank(1), 0);
  EXPECT_EQ(stage.priority_rank(0), 1);
}

TEST(DistributedStage, DefaultInvalid) {
  DistributedStage stage;
  EXPECT_FALSE(stage.valid());
}

}  // namespace
}  // namespace mvs::core

#include <gtest/gtest.h>

#include "core/central_balb.hpp"
#include "core/extensions.hpp"
#include "core/offload.hpp"
#include "sim/occlusion.hpp"
#include "util/rng.hpp"

namespace mvs {
namespace {

core::ObjectSpec object(std::uint64_t key, std::vector<int> coverage,
                        geom::SizeClassId size, std::size_t cameras) {
  core::ObjectSpec obj;
  obj.key = key;
  obj.coverage = std::move(coverage);
  obj.size_class.assign(cameras, size);
  return obj;
}

core::MvsProblem random_problem(util::Rng& rng, int n) {
  core::MvsProblem p;
  p.cameras = {gpu::jetson_xavier(), gpu::jetson_tx2(), gpu::jetson_nano()};
  for (int j = 0; j < n; ++j) {
    std::vector<int> coverage;
    for (int c = 0; c < 3; ++c)
      if (rng.bernoulli(0.6)) coverage.push_back(c);
    if (coverage.empty()) coverage.push_back(rng.uniform_int(0, 2));
    p.objects.push_back(object(static_cast<std::uint64_t>(j),
                               std::move(coverage), rng.uniform_int(0, 3), 3));
  }
  return p;
}

TEST(RedundantBalb, KOneMatchesSinglePassSemantics) {
  util::Rng rng(1);
  const core::MvsProblem p = random_problem(rng, 15);
  const core::Assignment single = core::redundant_balb(p, {1});
  EXPECT_TRUE(core::is_feasible(p, single));
  for (std::size_t j = 0; j < p.object_count(); ++j) {
    int trackers = 0;
    for (std::size_t i = 0; i < 3; ++i) trackers += single.x[i][j];
    EXPECT_EQ(trackers, 1);
  }
}

TEST(RedundantBalb, KTwoDoublesCoverageWherePossible) {
  util::Rng rng(2);
  const core::MvsProblem p = random_problem(rng, 20);
  const core::Assignment redundant = core::redundant_balb(p, {2});
  EXPECT_TRUE(core::is_feasible(p, redundant));
  for (std::size_t j = 0; j < p.object_count(); ++j) {
    int trackers = 0;
    for (std::size_t i = 0; i < 3; ++i) trackers += redundant.x[i][j];
    const int expected = std::min<int>(2, static_cast<int>(p.objects[j].coverage.size()));
    EXPECT_EQ(trackers, expected) << "object " << j;
  }
}

TEST(RedundantBalb, MoreRedundancyCostsMoreLatency) {
  util::Rng rng(3);
  const core::MvsProblem p = random_problem(rng, 25);
  const double l1 = core::redundant_balb(p, {1}).system_latency();
  const double l2 = core::redundant_balb(p, {2}).system_latency();
  const double l3 = core::redundant_balb(p, {3}).system_latency();
  EXPECT_LE(l1, l2 + 1e-9);
  EXPECT_LE(l2, l3 + 1e-9);
}

TEST(RedundantBalb, NeverAssignsOutsideCoverage) {
  util::Rng rng(4);
  const core::MvsProblem p = random_problem(rng, 30);
  const core::Assignment a = core::redundant_balb(p, {3});
  EXPECT_TRUE(core::is_feasible(p, a));  // feasibility checks condition (2)
}

TEST(QualityAwareBalb, PrefersHighQualityWithinSlack) {
  core::MvsProblem p;
  // Two identical cameras: pure latency balancing would pick either; the
  // quality matrix must break the tie toward camera 1.
  const gpu::DeviceProfile dev("a", 50.0, {{8, 10.0}});
  const gpu::DeviceProfile dev2("b", 50.0, {{8, 10.0}});
  p.cameras = {dev, dev2};
  p.objects = {object(0, {0, 1}, 0, 2)};
  const std::vector<std::vector<double>> quality = {{0.2, 0.9}};
  const core::Assignment a =
      core::quality_aware_balb(p, quality, {0.15});
  EXPECT_TRUE(a.x[1][0]);
}

TEST(QualityAwareBalb, SlackBoundsLatencyRegression) {
  util::Rng rng(5);
  const core::MvsProblem p = random_problem(rng, 25);
  // Quality = inverse camera index (prefers xavier) — but any matrix works.
  std::vector<std::vector<double>> quality(p.object_count(),
                                           std::vector<double>(3));
  for (auto& row : quality)
    for (std::size_t i = 0; i < 3; ++i) row[i] = rng.uniform(0, 1);

  const double base = core::central_balb(p).system_latency();
  const core::Assignment q = core::quality_aware_balb(p, quality, {0.15});
  EXPECT_TRUE(core::is_feasible(p, q));
  // Quality choice is slack-bounded per step; system latency stays within a
  // reasonable multiple of the latency-only schedule.
  EXPECT_LE(q.system_latency(), 1.8 * base);
}

TEST(QualityAwareBalb, ZeroSlackMatchesLatencyGreedy) {
  util::Rng rng(6);
  const core::MvsProblem p = random_problem(rng, 20);
  std::vector<std::vector<double>> quality(p.object_count(),
                                           std::vector<double>(3, 1.0));
  const core::Assignment q = core::quality_aware_balb(p, quality, {0.0});
  EXPECT_TRUE(core::is_feasible(p, q));
}

TEST(QualityAwareBalb, MeanQualityImprovesOnAverage) {
  // Quality awareness is greedy per decision, so a single instance can lose
  // to the latency-only schedule through batching side effects; averaged
  // over instances it must win clearly.
  util::Rng rng(7);
  double aware_total = 0.0, blind_total = 0.0;
  for (int trial = 0; trial < 25; ++trial) {
    const core::MvsProblem p = random_problem(rng, 30);
    std::vector<std::vector<double>> quality(p.object_count(),
                                             std::vector<double>(3));
    for (auto& row : quality)
      for (std::size_t i = 0; i < 3; ++i) row[i] = rng.uniform(0, 1);
    const core::Assignment latency_only = core::central_balb(p);
    const core::Assignment quality_aware =
        core::quality_aware_balb(p, quality, {0.3});
    aware_total += core::mean_assignment_quality(p, quality_aware, quality);
    blind_total += core::mean_assignment_quality(p, latency_only, quality);
  }
  EXPECT_GT(aware_total, blind_total);
}

detect::GroundTruthObject gt(std::uint64_t id, geom::BBox box, double dist) {
  detect::GroundTruthObject obj;
  obj.id = id;
  obj.box = box;
  obj.distance_m = dist;
  return obj;
}

TEST(Occlusion, CloserObjectHides) {
  const std::vector<detect::GroundTruthObject> objs = {
      gt(1, {100, 100, 50, 50}, 10.0),   // closer, big
      gt(2, {110, 110, 30, 30}, 30.0),   // fully inside 1's box, farther
  };
  const auto visible = sim::apply_occlusion(objs, {0.6, true});
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_EQ(visible[0].id, 1u);
  const auto events = sim::occlusion_events(objs, {0.6, true});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].occluded_id, 2u);
  EXPECT_EQ(events[0].occluder_id, 1u);
  EXPECT_GT(events[0].covered_fraction, 0.99);
}

TEST(Occlusion, FartherObjectCannotOcclude) {
  const std::vector<detect::GroundTruthObject> objs = {
      gt(1, {100, 100, 50, 50}, 40.0),
      gt(2, {110, 110, 30, 30}, 10.0),  // closer small object, not hidden
  };
  const auto visible = sim::apply_occlusion(objs, {0.6, true});
  EXPECT_EQ(visible.size(), 2u);
}

TEST(Occlusion, PartialOverlapBelowThresholdKept) {
  const std::vector<detect::GroundTruthObject> objs = {
      gt(1, {100, 100, 50, 50}, 10.0),
      gt(2, {140, 140, 50, 50}, 30.0),  // ~4% covered
  };
  EXPECT_EQ(sim::apply_occlusion(objs, {0.6, true}).size(), 2u);
}

TEST(Occlusion, DisabledIsIdentity) {
  const std::vector<detect::GroundTruthObject> objs = {
      gt(1, {100, 100, 50, 50}, 10.0), gt(2, {110, 110, 30, 30}, 30.0)};
  EXPECT_EQ(sim::apply_occlusion(objs, {0.6, false}).size(), 2u);
}

TEST(ViewSelection, SingleCameraCoversAll) {
  core::ViewSelectionProblem p;
  p.objects_per_camera = {{1, 2, 3}, {1, 2}};
  p.upload_cost = {10.0, 8.0};
  const auto sel = core::select_views_greedy(p);
  EXPECT_EQ(sel.cameras, (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(sel.total_cost, 10.0);
  EXPECT_EQ(sel.covered, 3u);
}

TEST(ViewSelection, PrefersCheapCoverage) {
  core::ViewSelectionProblem p;
  p.objects_per_camera = {{1, 2}, {3, 4}, {1, 2, 3, 4}};
  p.upload_cost = {1.0, 1.0, 10.0};
  const auto sel = core::select_views_greedy(p);
  EXPECT_EQ(sel.cameras, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(sel.total_cost, 2.0);
}

TEST(ViewSelection, EmptyProblem) {
  core::ViewSelectionProblem p;
  const auto sel = core::select_views_greedy(p);
  EXPECT_TRUE(sel.cameras.empty());
  EXPECT_EQ(sel.total_objects, 0u);
}

TEST(ViewSelection, OptimalMatchesSmallCase) {
  core::ViewSelectionProblem p;
  p.objects_per_camera = {{1, 2}, {2, 3}, {1, 3}};
  p.upload_cost = {3.0, 3.0, 3.0};
  const auto best = core::select_views_optimal(p);
  EXPECT_EQ(best.cameras.size(), 2u);
  EXPECT_DOUBLE_EQ(best.total_cost, 6.0);
}

/// Greedy set cover never exceeds the H(n)-approximation bound (and on our
/// random instances is usually much closer).
class GreedyCoverGap : public ::testing::TestWithParam<int> {};

TEST_P(GreedyCoverGap, WithinLogFactor) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 11 + 1);
  core::ViewSelectionProblem p;
  const std::size_t m = 6;
  const int objects = 12;
  p.objects_per_camera.resize(m);
  p.upload_cost.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    p.upload_cost[i] = rng.uniform(1.0, 10.0);
    for (int o = 0; o < objects; ++o)
      if (rng.bernoulli(0.4))
        p.objects_per_camera[i].push_back(static_cast<std::uint64_t>(o));
  }
  const auto greedy = core::select_views_greedy(p);
  const auto optimal = core::select_views_optimal(p);
  if (optimal.cameras.empty()) return;  // nothing coverable
  EXPECT_LE(greedy.total_cost, 3.2 * optimal.total_cost);  // ~H(12) bound
  EXPECT_EQ(greedy.covered, optimal.covered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyCoverGap, ::testing::Range(0, 12));

}  // namespace
}  // namespace mvs

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/pipeline.hpp"
#include "runtime/trace.hpp"
#include "util/json.hpp"

namespace mvs::runtime {
namespace {

TEST(TraceRecorder, RecordsAndCounts) {
  TraceRecorder trace;
  trace.record({1, 0, TraceEventType::kAssignment, 7, 0.0});
  trace.record({1, 1, TraceEventType::kAssignment, 8, 0.0});
  trace.record({2, 0, TraceEventType::kAdoptNew, 9, 0.0});
  EXPECT_EQ(trace.total(), 3u);
  EXPECT_EQ(trace.count(TraceEventType::kAssignment), 2u);
  EXPECT_EQ(trace.count(TraceEventType::kAdoptNew), 1u);
  EXPECT_EQ(trace.count(TraceEventType::kTakeover), 0u);
  trace.clear();
  EXPECT_EQ(trace.total(), 0u);
}

TEST(TraceRecorder, JsonIsParseable) {
  TraceRecorder trace;
  trace.record({5, 2, TraceEventType::kTakeover, 42, 1.5});
  const auto doc = util::Json::parse(trace.to_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_array());
  ASSERT_EQ(doc->as_array().size(), 1u);
  const util::Json& e = doc->as_array()[0];
  EXPECT_DOUBLE_EQ(e.number_or("frame", 0), 5.0);
  EXPECT_DOUBLE_EQ(e.number_or("camera", 0), 2.0);
  EXPECT_EQ(e.string_or("type", ""), "takeover");
  EXPECT_DOUBLE_EQ(e.number_or("object", 0), 42.0);
  EXPECT_DOUBLE_EQ(e.number_or("value", 0), 1.5);
}

TEST(TraceRecorder, JsonEventCountsMatchRecorder) {
  // Mixed-type event stream (including the netsim event types): the JSON
  // export must contain exactly the recorded events, with per-type tallies
  // matching count().
  const TraceEventType types[] = {
      TraceEventType::kKeyFrame,    TraceEventType::kAssignment,
      TraceEventType::kAdoptNew,    TraceEventType::kTakeover,
      TraceEventType::kTrackDrop,   TraceEventType::kCameraDown,
      TraceEventType::kCameraRejoin, TraceEventType::kNetRetry,
      TraceEventType::kNetDrop,     TraceEventType::kSessionAdmit,
      TraceEventType::kSessionReject, TraceEventType::kSessionEvict,
      TraceEventType::kSessionPause, TraceEventType::kSessionResume,
      TraceEventType::kSessionDefer, TraceEventType::kSessionReadmit,
      TraceEventType::kDeviceScale,  TraceEventType::kBatchSplit,
  };
  TraceRecorder trace;
  long frame = 0;
  for (int round = 0; round < 4; ++round)
    for (const TraceEventType type : types)
      for (int n = 0; n <= round; ++n)  // uneven per-type multiplicities
        trace.record(
            {frame++, round, type, static_cast<std::uint64_t>(n), 0.25 * n});

  const auto doc = util::Json::parse(trace.to_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_array());
  ASSERT_EQ(doc->as_array().size(), trace.total());

  std::map<std::string, std::size_t> json_counts;
  for (const util::Json& e : doc->as_array())
    ++json_counts[e.string_or("type", "?")];
  EXPECT_EQ(json_counts.size(), std::size(types));
  for (const TraceEventType type : types)
    EXPECT_EQ(json_counts[to_string(type)], trace.count(type))
        << to_string(type);
}

TEST(TraceRecorder, ThreadSafeRecording) {
  TraceRecorder trace;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < 500; ++i)
        trace.record({i, t, TraceEventType::kAdoptNew, 0, 0.0});
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(trace.total(), 2000u);
}

TEST(TraceRecorder, EventTypeNames) {
  EXPECT_STREQ(to_string(TraceEventType::kKeyFrame), "key_frame");
  EXPECT_STREQ(to_string(TraceEventType::kTrackDrop), "track_drop");
  EXPECT_STREQ(to_string(TraceEventType::kSessionAdmit), "session_admit");
  EXPECT_STREQ(to_string(TraceEventType::kSessionReject), "session_reject");
  EXPECT_STREQ(to_string(TraceEventType::kSessionEvict), "session_evict");
  EXPECT_STREQ(to_string(TraceEventType::kSessionDefer), "session_defer");
  EXPECT_STREQ(to_string(TraceEventType::kSessionReadmit), "session_readmit");
  EXPECT_STREQ(to_string(TraceEventType::kRtDrop), "rt_drop");
  EXPECT_STREQ(to_string(TraceEventType::kRtSupersede), "rt_supersede");
  EXPECT_STREQ(to_string(TraceEventType::kRtDeadlineMiss), "rt_deadline_miss");
  EXPECT_STREQ(to_string(TraceEventType::kDeviceScale), "device_scale");
  EXPECT_STREQ(to_string(TraceEventType::kBatchSplit), "batch_split");
}

// RAII temp file for the streaming-sink tests.
struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::vector<std::string> lines() const {
    std::ifstream in(path);
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line))
      if (!line.empty()) out.push_back(line);
    return out;
  }
  std::string path;
};

TEST(TraceRecorder, StreamingSinkWritesJsonl) {
  TempFile file("trace_stream_test.jsonl");
  TraceRecorder trace;
  trace.record({1, 0, TraceEventType::kAssignment, 7, 0.5});  // pre-sink
  ASSERT_TRUE(trace.open_stream(file.path));
  EXPECT_TRUE(trace.streaming());
  trace.record({2, 1, TraceEventType::kAdoptNew, 8, 1.5});
  trace.record({3, -1, TraceEventType::kKeyFrame, 0, 12.0});
  trace.close_stream();
  EXPECT_FALSE(trace.streaming());

  // One JSON object per line, only for events recorded while the sink was
  // open, in record order.
  const std::vector<std::string> lines = file.lines();
  ASSERT_EQ(lines.size(), 2u);
  const auto first = util::Json::parse(lines[0]);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->string_or("type", ""), "adopt_new");
  EXPECT_DOUBLE_EQ(first->number_or("frame", 0), 2.0);
  const auto second = util::Json::parse(lines[1]);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->string_or("type", ""), "key_frame");
  EXPECT_DOUBLE_EQ(second->number_or("value", 0), 12.0);

  // The in-memory snapshot still covers everything.
  EXPECT_EQ(trace.total(), 3u);
  EXPECT_EQ(trace.events().size(), 3u);
}

TEST(TraceRecorder, StreamOnlyCountsStayExact) {
  TempFile file("trace_stream_only_test.jsonl");
  TraceRecorder trace;
  ASSERT_TRUE(trace.open_stream(file.path, /*stream_only=*/true));
  for (int i = 0; i < 100; ++i)
    trace.record({i, 0,
                  i % 3 == 0 ? TraceEventType::kAssignment
                             : TraceEventType::kTrackDrop,
                  0, 0.0});
  trace.close_stream();

  // Memory was not grown, but the per-type counters are exact.
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.total(), 100u);
  EXPECT_EQ(trace.count(TraceEventType::kAssignment), 34u);
  EXPECT_EQ(trace.count(TraceEventType::kTrackDrop), 66u);
  EXPECT_EQ(file.lines().size(), 100u);

  trace.clear();
  EXPECT_EQ(trace.total(), 0u);
  EXPECT_EQ(trace.count(TraceEventType::kAssignment), 0u);
}

TEST(TraceRecorder, InMemoryPathBitIdenticalWithSink) {
  TempFile file("trace_sink_identity_test.jsonl");
  TraceRecorder plain, sunk;
  ASSERT_TRUE(sunk.open_stream(file.path));
  const TraceEvent events[] = {
      {1, 0, TraceEventType::kAssignment, 3, 0.25},
      {2, 1, TraceEventType::kTakeover, 4, 1.0},
      {3, -1, TraceEventType::kKeyFrame, 0, 9.5},
  };
  for (const TraceEvent& e : events) {
    plain.record(e);
    sunk.record(e);
  }
  sunk.close_stream();
  EXPECT_EQ(plain.to_json(), sunk.to_json());
  EXPECT_EQ(plain.total(), sunk.total());

  // The streamed lines are exactly the elements of the in-memory export.
  std::ostringstream joined;
  joined << "[";
  const std::vector<std::string> lines = file.lines();
  for (std::size_t i = 0; i < lines.size(); ++i)
    joined << (i ? "," : "") << lines[i];
  joined << "]";
  const auto streamed = util::Json::parse(joined.str());
  const auto memory = util::Json::parse(plain.to_json());
  ASSERT_TRUE(streamed.has_value());
  ASSERT_TRUE(memory.has_value());
  EXPECT_EQ(streamed->dump(), memory->dump());
}

TEST(TraceRecorder, OpenStreamRejectsUnwritablePath) {
  TraceRecorder trace;
  EXPECT_FALSE(trace.open_stream("/nonexistent-dir/trace.jsonl"));
  EXPECT_FALSE(trace.streaming());
  trace.record({1, 0, TraceEventType::kAssignment, 0, 0.0});
  EXPECT_EQ(trace.total(), 1u);  // recorder still usable
}

TEST(PipelineTrace, BalbEmitsSchedulingEvents) {
  TraceRecorder trace;
  PipelineConfig cfg;
  cfg.policy = Policy::kBalb;
  cfg.horizon_frames = 10;
  cfg.training_frames = 120;
  cfg.seed = 8;
  Pipeline pipeline("S3", cfg);  // busy scenario: churn guaranteed
  pipeline.attach_trace(&trace);
  pipeline.run(40);
  EXPECT_EQ(trace.count(TraceEventType::kKeyFrame), 4u);
  EXPECT_GT(trace.count(TraceEventType::kAssignment), 0u);
  EXPECT_GT(trace.count(TraceEventType::kAdoptNew), 0u);
  // Every event carries a valid frame index.
  for (const TraceEvent& e : trace.events()) {
    EXPECT_GE(e.frame, 0);
    EXPECT_GE(e.camera, -1);
  }
}

TEST(PipelineTrace, BalbCenNeverAdopts) {
  TraceRecorder trace;
  PipelineConfig cfg;
  cfg.policy = Policy::kBalbCen;
  cfg.horizon_frames = 10;
  cfg.training_frames = 120;
  cfg.seed = 8;
  Pipeline pipeline("S3", cfg);
  pipeline.attach_trace(&trace);
  pipeline.run(40);
  EXPECT_EQ(trace.count(TraceEventType::kAdoptNew), 0u);
  EXPECT_EQ(trace.count(TraceEventType::kTakeover), 0u);
  EXPECT_GT(trace.count(TraceEventType::kAssignment), 0u);
}

}  // namespace
}  // namespace mvs::runtime

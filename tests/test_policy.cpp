// mvs::policy unit tests: kind parsing, the three FramePolicy
// implementations (fixed / heuristic / learned), hysteresis behavior,
// model JSON round-trip + malformed-document rejection, feature-trace
// training, the track-deficit feature, and the admission demand factor.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "policy/features.hpp"
#include "policy/model.hpp"
#include "policy/policy.hpp"
#include "policy/train.hpp"

namespace {

using namespace mvs;

policy::CameraFeatures quiet_features() {
  policy::CameraFeatures f;
  f.frames_since_detect = 1.0;
  f.drift_px = 0.0;
  f.residual = 0.01;
  f.confidence = 0.9;
  f.churn = 0.0;
  f.track_count = 2.0;
  f.unexplained_motion = 0.0;
  f.track_deficit = 0.0;
  return f;
}

policy::PolicyConfig heuristic_config() {
  policy::PolicyConfig cfg;
  cfg.kind = policy::PolicyKind::kHeuristic;
  cfg.staleness_limit = 8;
  cfg.min_track_frames = 2;
  cfg.drift_px = 6.0;
  cfg.conf_floor = 0.45;
  cfg.motion_frac = 0.1;
  cfg.churn_hi = 0.5;
  cfg.hysteresis = 0.3;
  return cfg;
}

// ------------------------------------------------------------ kind parsing --

TEST(PolicyKind, ParseAndToStringRoundTrip) {
  for (const auto kind :
       {policy::PolicyKind::kFixed, policy::PolicyKind::kHeuristic,
        policy::PolicyKind::kLearned}) {
    const auto parsed = policy::parse_policy_kind(policy::to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_TRUE(policy::parse_policy_kind("HEURISTIC").has_value());
  EXPECT_FALSE(policy::parse_policy_kind("bogus").has_value());
  EXPECT_FALSE(policy::parse_policy_kind("").has_value());
}

// ------------------------------------------------------------------- fixed --

TEST(FixedPolicy, AlwaysDetects) {
  policy::PolicyConfig cfg;
  cfg.kind = policy::PolicyKind::kFixed;
  const auto p = policy::make_policy(cfg, 2);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), policy::PolicyKind::kFixed);
  for (int i = 0; i < 5; ++i) {
    const policy::Decision d = p->decide(0, quiet_features());
    EXPECT_TRUE(d.detect);
    EXPECT_DOUBLE_EQ(d.score, 1.0);
  }
}

// --------------------------------------------------------------- heuristic --

TEST(HeuristicPolicy, StalenessCapForcesDetect) {
  const auto p = policy::make_policy(heuristic_config(), 1);
  policy::CameraFeatures f = quiet_features();
  f.frames_since_detect = 8.0;
  EXPECT_TRUE(p->decide(0, f).detect);
}

TEST(HeuristicPolicy, RefractoryWindowBlocksOtherTriggers) {
  const auto p = policy::make_policy(heuristic_config(), 1);
  policy::CameraFeatures f = quiet_features();
  f.frames_since_detect = 1.0;  // < min_track_frames = 2
  f.drift_px = 100.0;           // would otherwise trigger
  f.confidence = 0.0;
  f.track_deficit = 1.0;
  EXPECT_FALSE(p->decide(0, f).detect);
}

TEST(HeuristicPolicy, TrackDeficitTriggersPastRefractory) {
  const auto p = policy::make_policy(heuristic_config(), 1);
  policy::CameraFeatures f = quiet_features();
  f.frames_since_detect = 2.0;
  EXPECT_FALSE(p->decide(0, f).detect);
  f.track_deficit = 0.5;
  EXPECT_TRUE(p->decide(0, f).detect);
}

TEST(HeuristicPolicy, DriftAndConfidenceTrigger) {
  const auto p = policy::make_policy(heuristic_config(), 1);
  policy::CameraFeatures f = quiet_features();
  f.frames_since_detect = 3.0;
  f.drift_px = 6.5;
  EXPECT_TRUE(p->decide(0, f).detect);
  f.drift_px = 0.0;
  f.confidence = 0.4;
  EXPECT_TRUE(p->decide(0, f).detect);
}

TEST(HeuristicPolicy, HysteresisSuppressesThresholdOscillation) {
  // A motion signal hovering just above the threshold fires once, then
  // stays quiet inside the hysteresis band; it must drop below the
  // low-water mark before it can fire again.
  const policy::PolicyConfig cfg = heuristic_config();
  const auto p = policy::make_policy(cfg, 1);
  policy::CameraFeatures f = quiet_features();
  f.frames_since_detect = 3.0;
  f.unexplained_motion = cfg.motion_frac * 1.05;  // inside the band

  EXPECT_TRUE(p->decide(0, f).detect);  // first crossing fires
  int fired = 0;
  for (int i = 0; i < 10; ++i)
    if (p->decide(0, f).detect) ++fired;
  EXPECT_EQ(fired, 0) << "hovering signal must not oscillate";

  // Dropping below low water re-arms the trigger...
  f.unexplained_motion = cfg.motion_frac * (1.0 - cfg.hysteresis) * 0.5;
  EXPECT_FALSE(p->decide(0, f).detect);
  // ...so the next crossing fires again.
  f.unexplained_motion = cfg.motion_frac * 1.05;
  EXPECT_TRUE(p->decide(0, f).detect);
}

TEST(HeuristicPolicy, SignalAboveBandFiresEvenWhenDisarmed) {
  const policy::PolicyConfig cfg = heuristic_config();
  const auto p = policy::make_policy(cfg, 1);
  policy::CameraFeatures f = quiet_features();
  f.frames_since_detect = 3.0;
  f.unexplained_motion = cfg.motion_frac * 1.05;
  EXPECT_TRUE(p->decide(0, f).detect);   // fires, disarms
  EXPECT_FALSE(p->decide(0, f).detect);  // hovering: suppressed
  f.unexplained_motion = cfg.motion_frac * (1.0 + cfg.hysteresis) * 1.5;
  EXPECT_TRUE(p->decide(0, f).detect) << "clearly-above-band must fire";
}

TEST(HeuristicPolicy, ResetRearmsLatches) {
  const policy::PolicyConfig cfg = heuristic_config();
  const auto p = policy::make_policy(cfg, 1);
  policy::CameraFeatures f = quiet_features();
  f.frames_since_detect = 3.0;
  f.unexplained_motion = cfg.motion_frac * 1.05;
  EXPECT_TRUE(p->decide(0, f).detect);
  EXPECT_FALSE(p->decide(0, f).detect);
  p->reset(0);  // key frame ran
  EXPECT_TRUE(p->decide(0, f).detect);
}

// -------------------------------------------------------------- model JSON --

policy::Model make_logistic() {
  policy::Model m;
  m.type = policy::ModelType::kLogistic;
  m.mean.assign(policy::kFeatureCount, 0.0);
  m.scale.assign(policy::kFeatureCount, 1.0);
  m.weights.assign(policy::kFeatureCount, 0.0);
  m.weights[0] = 2.0;  // frames_since_detect drives the decision
  m.bias = -3.0;
  m.threshold = 0.5;
  return m;
}

TEST(PolicyModel, LogisticJsonRoundTrip) {
  const policy::Model m = make_logistic();
  const std::string doc = policy::dump_model(m);
  std::string error;
  const auto back = policy::parse_model(doc, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->type, policy::ModelType::kLogistic);
  EXPECT_DOUBLE_EQ(back->threshold, m.threshold);
  std::vector<double> x(policy::kFeatureCount, 0.0);
  for (double v : {0.0, 1.0, 2.0, 5.0}) {
    x[0] = v;
    EXPECT_NEAR(back->evaluate(x), m.evaluate(x), 1e-12);
  }
}

TEST(PolicyModel, TreeJsonRoundTrip) {
  policy::Model m;
  m.type = policy::ModelType::kTree;
  m.threshold = 0.4;
  policy::TreeNode root;
  root.feature = 0;
  root.threshold = 3.0;
  root.left = 1;
  root.right = 2;
  policy::TreeNode lo, hi;
  lo.leaf = 0.1;
  hi.leaf = 0.9;
  m.nodes = {root, lo, hi};

  const std::string doc = policy::dump_model(m);
  std::string error;
  const auto back = policy::parse_model(doc, &error);
  ASSERT_TRUE(back.has_value()) << error;
  std::vector<double> x(policy::kFeatureCount, 0.0);
  x[0] = 1.0;
  EXPECT_DOUBLE_EQ(back->evaluate(x), 0.1);
  x[0] = 5.0;
  EXPECT_DOUBLE_EQ(back->evaluate(x), 0.9);
}

TEST(PolicyModel, MalformedDocumentsRejected) {
  const policy::Model good = make_logistic();
  std::string error;

  // Truncated / non-JSON.
  EXPECT_FALSE(policy::parse_model("{not json", &error).has_value());
  EXPECT_FALSE(error.empty());

  // Wrong feature names (layout mismatch must be fatal).
  std::string renamed = policy::dump_model(good);
  const auto pos = renamed.find("frames_since_detect");
  ASSERT_NE(pos, std::string::npos);
  renamed.replace(pos, 19, "frames_since_detec7");
  EXPECT_FALSE(policy::parse_model(renamed, &error).has_value());

  // Non-positive scale.
  policy::Model bad_scale = good;
  bad_scale.scale[2] = 0.0;
  EXPECT_FALSE(
      policy::parse_model(policy::dump_model(bad_scale), &error).has_value());

  // Tree with a backward child link (cycle).
  policy::Model bad_tree;
  bad_tree.type = policy::ModelType::kTree;
  policy::TreeNode n0;
  n0.feature = 0;
  n0.threshold = 1.0;
  n0.left = 0;  // self-link
  n0.right = 1;
  policy::TreeNode leaf;
  leaf.leaf = 0.5;
  bad_tree.nodes = {n0, leaf};
  EXPECT_FALSE(
      policy::parse_model(policy::dump_model(bad_tree), &error).has_value());

  // Leaf outside [0, 1].
  policy::Model bad_leaf;
  bad_leaf.type = policy::ModelType::kTree;
  policy::TreeNode l;
  l.leaf = 1.5;
  bad_leaf.nodes = {l};
  EXPECT_FALSE(
      policy::parse_model(policy::dump_model(bad_leaf), &error).has_value());
}

TEST(LearnedPolicy, UsesModelAndStalenessBrackets) {
  policy::PolicyConfig cfg;
  cfg.kind = policy::PolicyKind::kLearned;
  cfg.staleness_limit = 8;
  cfg.min_track_frames = 2;
  cfg.model_json = policy::dump_model(make_logistic());
  const auto p = policy::make_policy(cfg, 1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), policy::PolicyKind::kLearned);

  policy::CameraFeatures f = quiet_features();
  f.frames_since_detect = 1.0;  // refractory
  EXPECT_FALSE(p->decide(0, f).detect);
  f.frames_since_detect = 8.0;  // staleness cap
  EXPECT_TRUE(p->decide(0, f).detect);
  // sigmoid(2 * 2 - 3) = sigmoid(1) ~ 0.73 >= 0.5 -> detect.
  f.frames_since_detect = 2.0;
  EXPECT_TRUE(p->decide(0, f).detect);
  EXPECT_NEAR(p->decide(0, f).score, 1.0 / (1.0 + std::exp(-1.0)), 1e-9);
}

TEST(LearnedPolicy, MissingModelThrows) {
  policy::PolicyConfig cfg;
  cfg.kind = policy::PolicyKind::kLearned;
  EXPECT_THROW((void)policy::make_policy(cfg, 1), std::runtime_error);
  cfg.model_json = "{broken";
  EXPECT_THROW((void)policy::make_policy(cfg, 1), std::runtime_error);
}

// ---------------------------------------------------------------- training --

TEST(PolicyTraining, TraceRoundTripAndFit) {
  // Synthesize a separable trace: label = frames_since_detect > 3.
  std::ostringstream trace;
  for (int i = 0; i < 200; ++i) {
    const double fsd = static_cast<double>(i % 8);
    trace << "{\"f\": [" << fsd;
    for (std::size_t d = 1; d < policy::kFeatureCount; ++d)
      trace << ", " << 0.1 * static_cast<double>(d);
    trace << "], \"label\": " << (fsd > 3.0 ? 1 : 0) << "}\n";
  }

  std::istringstream in(trace.str());
  std::string error;
  const auto samples = policy::load_feature_trace(in, &error);
  ASSERT_TRUE(samples.has_value()) << error;
  ASSERT_EQ(samples->size(), 200u);

  for (const auto type :
       {policy::ModelType::kLogistic, policy::ModelType::kTree}) {
    const auto report = policy::train_model(*samples, type, &error);
    ASSERT_TRUE(report.has_value()) << error;
    EXPECT_GT(report->accuracy, 0.9) << policy::to_string(type);
    // The exported model must round-trip and reproduce the split.
    const auto back =
        policy::parse_model(policy::dump_model(report->model), &error);
    ASSERT_TRUE(back.has_value()) << error;
    std::vector<double> x(policy::kFeatureCount, 0.1);
    x[0] = 7.0;
    EXPECT_GE(back->evaluate(x), back->threshold);
    x[0] = 0.0;
    EXPECT_LT(back->evaluate(x), back->threshold);
  }
}

TEST(PolicyTraining, MalformedTraceRejected) {
  std::string error;
  std::istringstream bad_row("{\"f\": [1, 2], \"label\": 0}\n");
  EXPECT_FALSE(policy::load_feature_trace(bad_row, &error).has_value());
  EXPECT_FALSE(error.empty());

  std::istringstream not_json("garbage\n");
  EXPECT_FALSE(policy::load_feature_trace(not_json, &error).has_value());

  // Single-class traces cannot be fit.
  std::vector<policy::TrainSample> one_class(
      10, policy::TrainSample{std::vector<double>(policy::kFeatureCount, 0.0),
                              1});
  EXPECT_FALSE(
      policy::train_model(one_class, policy::ModelType::kLogistic, &error)
          .has_value());
}

// ----------------------------------------------------------- track deficit --

TEST(CameraFeatureState, TrackDeficitLifecycle) {
  policy::CameraFeatureState st;
  st.reset_baseline(4);  // key-frame plan installed 4 tracks
  policy::CameraFeatures f = st.features(4, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(f.track_deficit, 0.0);

  // Two tracks lost mid-horizon: deficit = 2/4.
  f = st.features(2, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(f.track_deficit, 0.5);

  // A legitimate departure shrinks the responsibility, not the deficit.
  st.note_departure();
  f = st.features(2, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(f.track_deficit, 1.0 / 3.0);

  // An inspection that leaves MORE tracks alive ratchets the baseline up.
  st.note_detect(0.9, 0, 5);
  f = st.features(5, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(f.track_deficit, 0.0);
  f = st.features(3, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(f.track_deficit, 2.0 / 5.0);

  // The next key-frame plan may shrink it again.
  st.reset_baseline(1);
  f = st.features(1, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(f.track_deficit, 0.0);
}

TEST(CameraFeatures, VectorLayoutMatchesNames) {
  policy::CameraFeatures f = quiet_features();
  f.track_deficit = 0.25;
  const std::vector<double> v = f.to_vector();
  ASSERT_EQ(v.size(), policy::kFeatureCount);
  EXPECT_DOUBLE_EQ(v[0], f.frames_since_detect);
  EXPECT_DOUBLE_EQ(v.back(), f.track_deficit);
  EXPECT_STREQ(policy::kFeatureNames.back(), "track_deficit");
}

// ----------------------------------------------------------- demand factor --

TEST(DemandFactor, FixedIsUnityOthersScale) {
  policy::PolicyConfig cfg;
  cfg.kind = policy::PolicyKind::kFixed;
  cfg.expected_detect_ratio = 0.5;
  EXPECT_DOUBLE_EQ(policy::demand_factor(cfg), 1.0);

  cfg.kind = policy::PolicyKind::kHeuristic;
  EXPECT_DOUBLE_EQ(policy::demand_factor(cfg), 0.5);

  cfg.expected_detect_ratio = 0.001;  // clamped
  EXPECT_DOUBLE_EQ(policy::demand_factor(cfg), 0.05);
  cfg.expected_detect_ratio = 2.0;
  EXPECT_DOUBLE_EQ(policy::demand_factor(cfg), 1.0);
}

}  // namespace

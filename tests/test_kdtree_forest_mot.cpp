#include <gtest/gtest.h>

#include <algorithm>

#include "metrics/mot.hpp"
#include "ml/kdtree.hpp"
#include "ml/knn.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"

namespace mvs {
namespace {

using ml::Feature;

std::vector<Feature> random_points(util::Rng& rng, std::size_t n,
                                   std::size_t dim) {
  std::vector<Feature> points(n, Feature(dim));
  for (Feature& p : points)
    for (double& v : p) v = rng.uniform(-10, 10);
  return points;
}

TEST(KdTree, SinglePoint) {
  ml::KdTree tree({{1.0, 2.0}});
  const auto nn = tree.nearest({0.0, 0.0}, 3);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0], 0u);
}

TEST(KdTree, FindsExactPoint) {
  util::Rng rng(1);
  const auto points = random_points(rng, 100, 4);
  ml::KdTree tree(points);
  for (std::size_t probe = 0; probe < 100; probe += 7) {
    const auto nn = tree.nearest(points[probe], 1);
    ASSERT_EQ(nn.size(), 1u);
    // The exact point (or an identical duplicate) must be returned.
    EXPECT_EQ(points[nn[0]], points[probe]);
  }
}

/// Exactness: kd-tree results equal brute force for every query, all sizes.
class KdTreeVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(KdTreeVsBruteForce, IdenticalNeighborSets) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 5);
  const std::size_t n = 5 + rng.index(300);
  const std::size_t dim = 2 + rng.index(4);
  const auto points = random_points(rng, n, dim);
  ml::KdTree tree(points);
  for (int q = 0; q < 20; ++q) {
    Feature query(dim);
    for (double& v : query) v = rng.uniform(-12, 12);
    const int k = 1 + static_cast<int>(rng.index(8));
    auto from_tree = tree.nearest(query, k);
    auto brute = ml::k_nearest(points, query, k);
    ASSERT_EQ(from_tree.size(), brute.size());
    // Compare by distance (ties may order differently between methods).
    auto dist = [&](std::size_t i) {
      double s = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double delta = points[i][d] - query[d];
        s += delta * delta;
      }
      return s;
    };
    for (std::size_t r = 0; r < brute.size(); ++r)
      EXPECT_NEAR(dist(from_tree[r]), dist(brute[r]), 1e-9);
    // Nearest-first ordering.
    for (std::size_t r = 1; r < from_tree.size(); ++r)
      EXPECT_LE(dist(from_tree[r - 1]), dist(from_tree[r]) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdTreeVsBruteForce, ::testing::Range(0, 15));

TEST(KdTree, KCappedAtSize) {
  util::Rng rng(2);
  const auto points = random_points(rng, 6, 3);
  ml::KdTree tree(points);
  EXPECT_EQ(tree.nearest({0, 0, 0}, 100).size(), 6u);
}

TEST(RandomForest, SeparatesBlobs) {
  util::Rng rng(3);
  std::vector<Feature> xs;
  std::vector<int> ys;
  for (int i = 0; i < 300; ++i) {
    const bool positive = i % 2 == 0;
    const double c = positive ? 3.0 : 0.0;
    xs.push_back({c + rng.gaussian(0, 0.5), c + rng.gaussian(0, 0.5)});
    ys.push_back(positive ? 1 : 0);
  }
  ml::RandomForest forest;
  forest.fit(xs, ys);
  EXPECT_EQ(forest.tree_count(), 15u);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    correct += forest.predict(xs[i]) == (ys[i] == 1);
  EXPECT_GE(static_cast<double>(correct) / xs.size(), 0.97);
}

TEST(RandomForest, SolvesXor) {
  util::Rng rng(4);
  std::vector<Feature> xs;
  std::vector<int> ys;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
    xs.push_back({a, b});
    ys.push_back((a > 0) != (b > 0) ? 1 : 0);
  }
  ml::RandomForest forest;
  forest.fit(xs, ys);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    correct += forest.predict(xs[i]) == (ys[i] == 1);
  EXPECT_GE(static_cast<double>(correct) / xs.size(), 0.9);
}

TEST(RandomForest, DecisionSignMatchesPredict) {
  util::Rng rng(5);
  std::vector<Feature> xs;
  std::vector<int> ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back({rng.uniform(0, 1), rng.uniform(0, 1)});
    ys.push_back(xs.back()[0] > 0.5 ? 1 : 0);
  }
  ml::RandomForest forest;
  forest.fit(xs, ys);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(forest.predict(xs[static_cast<std::size_t>(i)]),
              forest.decision(xs[static_cast<std::size_t>(i)]) > 0.0);
}

TEST(Mot, PerfectTrackingIsMotaOne) {
  metrics::MotAccumulator mot;
  for (int f = 0; f < 10; ++f)
    mot.add_frame({{1, 100}, {2, 200}}, 0, 0);
  EXPECT_DOUBLE_EQ(mot.mota(), 1.0);
  EXPECT_EQ(mot.id_switches(), 0u);
  EXPECT_EQ(mot.fragmentations(), 0u);
  EXPECT_DOUBLE_EQ(mot.identity_consistency(), 1.0);
}

TEST(Mot, CountsMissesAndFalsePositives) {
  metrics::MotAccumulator mot;
  mot.add_frame({{1, 100}}, 1, 2);  // 1 match, 1 miss, 2 FP tracks
  EXPECT_EQ(mot.matches(), 1u);
  EXPECT_EQ(mot.misses(), 1u);
  EXPECT_EQ(mot.false_positives(), 2u);
  // MOTA = 1 - (1 + 2 + 0) / 2 = -0.5.
  EXPECT_DOUBLE_EQ(mot.mota(), -0.5);
}

TEST(Mot, DetectsIdSwitch) {
  metrics::MotAccumulator mot;
  mot.add_frame({{1, 100}}, 0, 0);
  mot.add_frame({{1, 100}}, 0, 0);
  mot.add_frame({{7, 100}}, 0, 0);  // same object, new track id
  EXPECT_EQ(mot.id_switches(), 1u);
  EXPECT_EQ(mot.fragmentations(), 1u);
  // 2 of 3 observations carry the dominant id.
  EXPECT_NEAR(mot.identity_consistency(), 2.0 / 3.0, 1e-12);
}

TEST(Mot, SwitchBackCountsTwiceButFragmentsOnce) {
  metrics::MotAccumulator mot;
  mot.add_frame({{1, 100}}, 0, 0);
  mot.add_frame({{2, 100}}, 0, 0);
  mot.add_frame({{1, 100}}, 0, 0);
  EXPECT_EQ(mot.id_switches(), 2u);
  EXPECT_EQ(mot.fragmentations(), 1u);  // two distinct pairings total
}

TEST(Mot, EmptyIsPerfect) {
  metrics::MotAccumulator mot;
  EXPECT_DOUBLE_EQ(mot.mota(), 1.0);
  EXPECT_DOUBLE_EQ(mot.identity_consistency(), 1.0);
}

}  // namespace
}  // namespace mvs

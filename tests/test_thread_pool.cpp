#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/thread_pool.hpp"

namespace mvs::util {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForEachCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<int> hits(64, 0);
  pool.parallel_for_each(hits.size(),
                         [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PartitionedStateIsRaceFree) {
  // Each index owns its slot; sums must be exact (no lost updates).
  ThreadPool pool;
  std::vector<long> slots(200, 0);
  for (int round = 0; round < 10; ++round)
    pool.parallel_for_each(slots.size(), [&](std::size_t i) {
      for (int k = 0; k < 1000; ++k) slots[i] += 1;
    });
  const long total = std::accumulate(slots.begin(), slots.end(), 0L);
  EXPECT_EQ(total, 200L * 10L * 1000L);
}

TEST(ThreadPool, WaitIdleWithNoTasks) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for_each(10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for_each(20, [&](std::size_t) { ++counter; });
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPool, ZeroChoosesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, DestructionWithPendingWorkCompletes) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++counter; });
    pool.wait_idle();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace mvs::util

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace mvs::util {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForEachCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<int> hits(64, 0);
  pool.parallel_for_each(hits.size(),
                         [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PartitionedStateIsRaceFree) {
  // Each index owns its slot; sums must be exact (no lost updates).
  ThreadPool pool;
  std::vector<long> slots(200, 0);
  for (int round = 0; round < 10; ++round)
    pool.parallel_for_each(slots.size(), [&](std::size_t i) {
      for (int k = 0; k < 1000; ++k) slots[i] += 1;
    });
  const long total = std::accumulate(slots.begin(), slots.end(), 0L);
  EXPECT_EQ(total, 200L * 10L * 1000L);
}

TEST(ThreadPool, WaitIdleWithNoTasks) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for_each(10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for_each(20, [&](std::size_t) { ++counter; });
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPool, ZeroChoosesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, DestructionWithPendingWorkCompletes) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++counter; });
    pool.wait_idle();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ExceptionPropagatesFromParallelForEach) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for_each(16,
                                      [&](std::size_t i) {
                                        ++ran;
                                        if (i == 5)
                                          throw std::runtime_error("task 5");
                                      }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 16);  // remaining tasks still ran
  // The pool stays usable and the error does not resurface.
  std::atomic<int> counter{0};
  pool.parallel_for_each(8, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, ExceptionPropagatesFromSubmitViaWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  pool.wait_idle();  // cleared after the first rethrow
}

TEST(ThreadPool, RunTilesCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<int> hits(97, 0);
  pool.run_tiles(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, RunTilesNestedInsideWorkersDoesNotDeadlock) {
  // Outer per-camera fan-out with inner per-row tiling: every worker may be
  // busy with an outer task, so inner progress must come from the callers.
  ThreadPool pool(4);
  std::vector<std::vector<int>> hits(6, std::vector<int>(32, 0));
  pool.parallel_for_each(hits.size(), [&](std::size_t outer) {
    pool.run_tiles(hits[outer].size(),
                   [&, outer](std::size_t inner) { hits[outer][inner] += 1; });
  });
  for (const auto& row : hits)
    for (int h : row) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, RunTilesNestedWithSingleWorker) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for_each(3, [&](std::size_t) {
    pool.run_tiles(16, [&](std::size_t) { ++counter; });
  });
  EXPECT_EQ(counter.load(), 3 * 16);
}

TEST(ThreadPool, SharedAcrossConcurrentSessions) {
  // The fleet runtime drives many sessions over ONE pool: each session
  // issues its own parallel_for_each / run_tiles calls concurrently. Every
  // call must cover exactly its own indices with no lost updates.
  ThreadPool pool(4);
  constexpr int kSessions = 6;
  constexpr int kRounds = 25;
  constexpr std::size_t kIndices = 64;
  std::vector<std::vector<long>> slots(
      kSessions, std::vector<long>(kIndices, 0));
  std::vector<std::thread> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&pool, &slots, s] {
      for (int round = 0; round < kRounds; ++round) {
        if (s % 2 == 0) {
          pool.parallel_for_each(kIndices, [&slots, s](std::size_t i) {
            slots[static_cast<std::size_t>(s)][i] += 1;
          });
        } else {
          pool.run_tiles(kIndices, [&slots, s](std::size_t i) {
            slots[static_cast<std::size_t>(s)][i] += 1;
          });
        }
      }
    });
  }
  for (std::thread& t : sessions) t.join();
  for (const auto& session : slots)
    for (long v : session) EXPECT_EQ(v, kRounds);
}

TEST(ThreadPool, ConcurrentCallersDoNotObserveEachOthersExceptions) {
  // Per-call completion groups: a throwing session must not leak its error
  // into an innocent session's parallel_for_each, nor hang either of them.
  ThreadPool pool(3);
  std::atomic<int> clean_runs{0};
  std::atomic<int> faulty_throws{0};
  std::thread faulty([&] {
    for (int round = 0; round < 50; ++round) {
      try {
        pool.parallel_for_each(16, [](std::size_t i) {
          if (i == 3) throw std::runtime_error("faulty session");
        });
      } catch (const std::runtime_error&) {
        ++faulty_throws;
      }
    }
  });
  std::thread clean([&] {
    for (int round = 0; round < 50; ++round) {
      pool.parallel_for_each(16, [&](std::size_t) { ++clean_runs; });
    }
  });
  faulty.join();
  clean.join();
  EXPECT_EQ(faulty_throws.load(), 50);
  EXPECT_EQ(clean_runs.load(), 50 * 16);
}

TEST(ThreadPool, ParallelForEachNestedInsidePoolTasks) {
  // Sessions themselves run as pool tasks in the fleet; their inner
  // per-camera parallel_for_each must make progress even when every worker
  // is occupied by an outer session task (caller participation).
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.run_tiles(4, [&](std::size_t) {
    pool.parallel_for_each(8, [&](std::size_t) { ++counter; });
  });
  EXPECT_EQ(counter.load(), 4 * 8);
}

TEST(ThreadPool, RunTilesPropagatesException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run_tiles(24,
                              [&](std::size_t i) {
                                ++ran;
                                if (i == 7) throw std::runtime_error("tile 7");
                              }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 24);  // all tiles were still claimed and ran
  pool.wait_idle();           // tile errors never leak into the pool state
}

// ------------------------------------------------- contention stress tests --
// These hammer the bounded MPMC ring well past its capacity (1024 slots)
// from more producers than consumers, so the full-queue backpressure path
// (spin + eventcount park) and the CAS retry loops all execute. They are
// part of the regular suite and also the payload of the tsan_spotcheck
// target (see tests/CMakeLists.txt).

TEST(ThreadPoolStress, MoreProducersThanConsumersLoseNoTasks) {
  ThreadPool pool(2);  // 2 consumers
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 5000;  // 40k tasks >> 1024-slot ring
  std::atomic<long> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i)
        pool.submit([&counter] {
          counter.fetch_add(1, std::memory_order_relaxed);
        });
    });
  for (std::thread& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), long{kProducers} * kPerProducer);
}

TEST(ThreadPoolStress, QueueFullBackpressureBlocksWithoutDropping) {
  // One worker, parked on a gate, while a producer pushes 4x the ring
  // capacity: submit() must apply backpressure (block, not drop or throw)
  // until the gate opens and the worker drains the ring.
  ThreadPool pool(1);
  std::atomic<bool> gate{false};
  std::atomic<long> counter{0};
  pool.submit([&gate] {
    while (!gate.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  std::thread producer([&] {
    for (int i = 0; i < 4096; ++i)
      pool.submit([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
  });
  // Give the producer time to wedge against the full ring, then open up.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.store(true, std::memory_order_release);
  producer.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 4096);
}

TEST(ThreadPoolStress, NestedRunTilesFromEveryWorkerUnderSaturation) {
  // Outer tile count is a multiple of the worker count, so every worker
  // (and the caller) is simultaneously inside run_tiles issuing a nested
  // run_tiles — the deadlock-prone shape for completion-group schemes.
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 64;
  std::vector<std::vector<int>> hits(kOuter, std::vector<int>(kInner, 0));
  pool.run_tiles(kOuter, [&](std::size_t outer) {
    pool.run_tiles(kInner,
                   [&hits, outer](std::size_t i) { hits[outer][i] += 1; });
  });
  for (const auto& row : hits)
    for (int h : row) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolStress, TaskThrowsDuringSaturationKeepsPoolUsable) {
  // An exception in the middle of a saturated burst must not lose sibling
  // tasks, corrupt ring state, or poison later batches.
  ThreadPool pool(4);
  std::atomic<long> ran{0};
  for (int i = 0; i < 3000; ++i) {
    const bool thrower = (i == 1500);
    pool.submit([&ran, thrower] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (thrower) throw std::runtime_error("mid-burst");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 3000);

  // Pool remains fully functional after the rethrow.
  std::atomic<long> after{0};
  pool.run_tiles(256, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 256);
}

}  // namespace
}  // namespace mvs::util

// Sharded serving plane tests (mvs::fleet::ShardedFleet).
//
// Pins the four plane-level guarantees from DESIGN.md §13 — the
// shard-of-one identity (ShardedFleet{shards=1} is bit-identical to a
// plain Fleet), conservation of per-session stats across live migration,
// deterministic least-loaded placement independent of the worker-pool
// width, and the second merge level's exact-zero saving at one shard —
// plus the typed handle-error surface on the sharded directory and a
// 1k-session synthetic admission smoke.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "fleet/fleet.hpp"
#include "fleet/sharded_fleet.hpp"
#include "obs/obs.hpp"
#include "runtime/trace.hpp"
#include "util/json.hpp"

namespace mvs::fleet {
namespace {

SessionSpec pipeline_spec(const std::string& name, std::uint64_t seed,
                          int fps = 0) {
  SessionSpec s;
  s.name = name;
  s.scenario = "S2";
  s.pipeline.policy = runtime::Policy::kBalb;
  s.pipeline.horizon_frames = 10;
  s.pipeline.training_frames = 120;
  s.pipeline.seed = seed;
  s.fps = fps;
  return s;
}

SessionSpec synthetic_spec(const std::string& name, std::uint64_t seed) {
  SessionSpec s;
  s.name = name;
  s.scenario = "S2";
  s.synthetic = true;
  s.pipeline.seed = seed;
  return s;
}

void expect_sessions_identical(const FleetSnapshot& a, const FleetSnapshot& b) {
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    const SessionSnapshot& x = a.sessions[i];
    const SessionSnapshot& y = b.sessions[i];
    EXPECT_EQ(x.handle, y.handle) << i;
    EXPECT_EQ(x.shard, y.shard) << i;
    EXPECT_EQ(x.name, y.name) << i;
    EXPECT_EQ(x.state, y.state) << i;
    EXPECT_EQ(x.fps, y.fps) << i;
    EXPECT_EQ(x.stride, y.stride) << i;
    EXPECT_EQ(x.tight_masks, y.tight_masks) << i;
    EXPECT_EQ(x.frames, y.frames) << i;
    EXPECT_EQ(x.deferred_ticks, y.deferred_ticks) << i;
    EXPECT_EQ(x.slo_violations, y.slo_violations) << i;
    EXPECT_DOUBLE_EQ(x.p50_ms, y.p50_ms) << i;
    EXPECT_DOUBLE_EQ(x.p95_ms, y.p95_ms) << i;
    EXPECT_DOUBLE_EQ(x.p99_ms, y.p99_ms) << i;
    EXPECT_DOUBLE_EQ(x.mean_ms, y.mean_ms) << i;
    EXPECT_DOUBLE_EQ(x.mean_isolated_ms, y.mean_isolated_ms) << i;
    EXPECT_DOUBLE_EQ(x.mean_queue_ms, y.mean_queue_ms) << i;
    EXPECT_DOUBLE_EQ(x.busy_sum_ms, y.busy_sum_ms) << i;
    EXPECT_EQ(x.retries, y.retries) << i;
    EXPECT_EQ(x.dropped_msgs, y.dropped_msgs) << i;
    EXPECT_DOUBLE_EQ(x.object_recall, y.object_recall) << i;
  }
}

/// Bit-exact equality on every snapshot field two implementations share
/// (everything except `shards` and `shard_rollups`, the only fields a
/// one-shard plane legitimately reports differently).
void expect_snapshot_identical(const FleetSnapshot& a, const FleetSnapshot& b) {
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.wheel_hz, b.wheel_hz);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.evicted, b.evicted);
  EXPECT_EQ(a.readmitted, b.readmitted);
  EXPECT_EQ(a.redegraded, b.redegraded);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.batch_splits, b.batch_splits);
  EXPECT_EQ(a.shared_batches, b.shared_batches);
  EXPECT_EQ(a.isolated_batches, b.isolated_batches);
  EXPECT_DOUBLE_EQ(a.shared_busy_ms, b.shared_busy_ms);
  EXPECT_DOUBLE_EQ(a.isolated_busy_ms, b.isolated_busy_ms);
  EXPECT_DOUBLE_EQ(a.total_queue_ms, b.total_queue_ms);
  EXPECT_EQ(a.cross_batches_saved, b.cross_batches_saved);
  EXPECT_DOUBLE_EQ(a.cross_busy_saved_ms, b.cross_busy_saved_ms);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.total_dropped_msgs, b.total_dropped_msgs);
  EXPECT_DOUBLE_EQ(a.mean_occupancy, b.mean_occupancy);
  EXPECT_DOUBLE_EQ(a.p95_tick_busy_ms, b.p95_tick_busy_ms);
  EXPECT_DOUBLE_EQ(a.mean_queue_depth, b.mean_queue_depth);
  EXPECT_EQ(a.device_pools, b.device_pools);
  expect_sessions_identical(a, b);
}

// ------------------------------------------------- shard-of-one identity --

TEST(ShardedFleet, ShardOfOneBitIdenticalToFleet) {
  // The whole serving surface — admission (degrade ladder), wheel growth,
  // lifecycle, eviction, stepping — driven identically against a plain
  // Fleet and a one-shard plane must produce bit-identical snapshots and
  // session results.
  FleetConfig cfg;
  cfg.readmit_interval = 5;
  cfg.allow_split = true;

  Fleet plain(cfg);
  ShardedFleet sharded(cfg);  // cfg.shards == 1
  ASSERT_EQ(sharded.shard_count(), 1);

  const auto drive = [](FleetApi& fleet) {
    std::vector<SessionHandle> handles;
    handles.push_back(fleet.admit(pipeline_spec("a", 21)).handle);
    handles.push_back(fleet.admit(pipeline_spec("b", 22, /*fps=*/15)).handle);
    fleet.run(12);
    handles.push_back(fleet.admit(pipeline_spec("c", 23)).handle);
    fleet.run(6);
    EXPECT_EQ(fleet.pause(handles[1]), FleetStatus::kOk);
    fleet.run(6);
    EXPECT_EQ(fleet.resume(handles[1]), FleetStatus::kOk);
    EXPECT_EQ(fleet.evict(handles[0]), FleetStatus::kOk);
    fleet.run(6);
    return handles;
  };
  const std::vector<SessionHandle> ph = drive(plain);
  const std::vector<SessionHandle> sh = drive(sharded);
  ASSERT_EQ(ph.size(), sh.size());
  for (std::size_t i = 0; i < ph.size(); ++i) EXPECT_EQ(ph[i], sh[i]);

  const FleetSnapshot a = plain.snapshot();
  const FleetSnapshot b = sharded.snapshot();
  EXPECT_EQ(a.shards, 1);
  EXPECT_EQ(b.shards, 1);
  expect_snapshot_identical(a, b);

  // Session results are bit-identical too, including the evicted one's
  // retained result.
  for (std::size_t i = 0; i < ph.size(); ++i) {
    const runtime::PipelineResult rp = plain.result(ph[i]);
    const runtime::PipelineResult rs = sharded.result(sh[i]);
    ASSERT_EQ(rp.frames.size(), rs.frames.size()) << i;
    EXPECT_DOUBLE_EQ(rp.object_recall, rs.object_recall) << i;
    for (std::size_t f = 0; f < rp.frames.size(); ++f)
      EXPECT_DOUBLE_EQ(rp.frames[f].slowest_infer_ms,
                       rs.frames[f].slowest_infer_ms);
  }
}

TEST(ShardedFleet, MakeFleetPicksTheImplementationByShards) {
  FleetConfig cfg;
  const std::unique_ptr<FleetApi> one = make_fleet(cfg);
  EXPECT_EQ(one->snapshot().shards, 1);
  EXPECT_EQ(dynamic_cast<ShardedFleet*>(one.get()), nullptr);
  cfg.shards = 4;
  const std::unique_ptr<FleetApi> four = make_fleet(cfg);
  ASSERT_NE(dynamic_cast<ShardedFleet*>(four.get()), nullptr);
  EXPECT_EQ(four->snapshot().shards, 4);
  EXPECT_EQ(four->snapshot().shard_rollups.size(), 4u);
}

// ------------------------------------------------------- live migration --

TEST(ShardedFleet, ForcedMigrationConservesSessionStats) {
  // Mid-run migration must move the session's record whole: frame count,
  // attributed busy, latency stats and identity are exactly what they were
  // the tick before the move, and the session keeps serving on its native
  // cadence afterwards — a twin plane that never migrates finishes with
  // the same per-session frame counts.
  FleetConfig cfg;
  cfg.shards = 2;
  ShardedFleet fleet(cfg);
  ShardedFleet twin(cfg);

  std::vector<SessionHandle> handles;
  std::vector<SessionHandle> twin_handles;
  for (int i = 0; i < 4; ++i) {
    const std::string name = "s" + std::to_string(i);
    const AdmitResult r = fleet.admit(synthetic_spec(name, 100 + i));
    const AdmitResult t = twin.admit(synthetic_spec(name, 100 + i));
    ASSERT_TRUE(r.admitted);
    EXPECT_EQ(r.shard, t.shard);
    handles.push_back(r.handle);
    twin_handles.push_back(t.handle);
  }
  fleet.run(9);
  twin.run(9);

  const FleetSnapshot before = fleet.snapshot();
  const SessionSnapshot& victim_before = before.sessions[0];
  const int source = victim_before.shard;
  const int target = 1 - source;

  ASSERT_EQ(fleet.migrate(handles[0], target), FleetStatus::kOk);
  EXPECT_EQ(fleet.migrate(handles[0], target), FleetStatus::kInvalidState);
  EXPECT_EQ(fleet.snapshot().migrations, 1);

  // Everything the session accumulated crossed the shard boundary intact.
  const FleetSnapshot after = fleet.snapshot();
  const SessionSnapshot* moved = nullptr;
  for (const SessionSnapshot& s : after.sessions)
    if (s.handle == handles[0]) moved = &s;
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->shard, target);
  EXPECT_EQ(moved->state, SessionState::kActive);
  EXPECT_EQ(moved->frames, victim_before.frames);
  EXPECT_DOUBLE_EQ(moved->busy_sum_ms, victim_before.busy_sum_ms);
  EXPECT_DOUBLE_EQ(moved->mean_ms, victim_before.mean_ms);
  EXPECT_DOUBLE_EQ(moved->p95_ms, victim_before.p95_ms);

  // Cadence-exact handover: the migrated session serves exactly as many
  // frames as its never-migrated twin.
  fleet.run(9);
  twin.run(9);
  const FleetSnapshot done = fleet.snapshot();
  const FleetSnapshot twin_done = twin.snapshot();
  long frames = 0, twin_frames = 0;
  for (const SessionSnapshot& s : done.sessions) {
    frames += s.frames;
    if (s.handle == handles[0]) EXPECT_EQ(s.frames, 18);
  }
  for (const SessionSnapshot& s : twin_done.sessions) twin_frames += s.frames;
  EXPECT_EQ(frames, twin_frames);
  EXPECT_EQ(done.migrations, 1);
  EXPECT_EQ(twin_done.migrations, 0);

  // The outer handle survived the move: lifecycle calls keep working.
  EXPECT_EQ(fleet.pause(handles[0]), FleetStatus::kOk);
  EXPECT_EQ(fleet.resume(handles[0]), FleetStatus::kOk);
}

TEST(ShardedFleet, RebalanceScanMigratesOffTheHottestShard) {
  // Engineer an imbalance the scan must fix: admit eight sessions (they
  // place four per shard), then evict three of one shard's four. The next
  // scans see the survivor shard's windowed busy far above the high-water
  // band and move one session per scan toward balance, each emitting a
  // session_migrate trace event.
  FleetConfig cfg;
  cfg.shards = 2;
  cfg.rebalance_interval = 5;
  ShardedFleet fleet(cfg);
  runtime::TraceRecorder trace;
  fleet.attach_trace(&trace);

  std::vector<AdmitResult> admits;
  for (int i = 0; i < 8; ++i)
    admits.push_back(fleet.admit(synthetic_spec("s" + std::to_string(i),
                                                200 + i)));
  int evicted = 0;
  for (const AdmitResult& r : admits) {
    ASSERT_TRUE(r.admitted);
    if (r.shard == 1 && evicted < 3) {
      ASSERT_EQ(fleet.evict(r.handle), FleetStatus::kOk);
      ++evicted;
    }
  }
  ASSERT_EQ(evicted, 3);

  fleet.run(20);
  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_GE(snap.migrations, 1);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kSessionMigrate),
            static_cast<std::size_t>(snap.migrations));
  // Rebalance converged: shard session counts differ by at most one.
  ASSERT_EQ(snap.shard_rollups.size(), 2u);
  EXPECT_LE(std::abs(snap.shard_rollups[0].sessions -
                     snap.shard_rollups[1].sessions),
            1);
  // Migrated sessions kept serving every tick.
  for (const SessionSnapshot& s : snap.sessions)
    if (s.state == SessionState::kActive) EXPECT_EQ(s.frames, 20);
}

// ------------------------------------------------------------ placement --

TEST(ShardedFleet, PlacementIsDeterministicAcrossThreadCounts) {
  const auto build = [](int threads) {
    FleetConfig cfg;
    cfg.shards = 4;
    cfg.threads = threads;
    auto fleet = std::make_unique<ShardedFleet>(cfg);
    std::vector<int> shards;
    for (int i = 0; i < 32; ++i) {
      const AdmitResult r =
          fleet->admit(synthetic_spec("s" + std::to_string(i), 300 + i));
      EXPECT_TRUE(r.admitted);
      shards.push_back(r.shard);
    }
    fleet->run(10);
    return std::make_pair(std::move(fleet), shards);
  };
  auto [narrow, narrow_shards] = build(1);
  auto [wide, wide_shards] = build(8);
  EXPECT_EQ(narrow_shards, wide_shards);
  expect_snapshot_identical(narrow->snapshot(), wide->snapshot());
}

TEST(ShardedFleet, ShardCapacityRejectsInConstantTimeOncefull) {
  FleetConfig cfg;
  cfg.shards = 2;
  cfg.shard_capacity = 3;
  ShardedFleet fleet(cfg);
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(
        fleet.admit(synthetic_spec("s" + std::to_string(i), 400 + i)).admitted);
  const AdmitResult overflow = fleet.admit(synthetic_spec("over", 499));
  EXPECT_FALSE(overflow.admitted);
  EXPECT_FALSE(overflow.handle.valid());
  EXPECT_FALSE(overflow.reason.empty());
  EXPECT_EQ(fleet.snapshot().rejected, 1);
  // Capacity is LIVE sessions: evicting one frees a slot.
  ASSERT_EQ(fleet.evict(fleet.snapshot().sessions[0].handle), FleetStatus::kOk);
  EXPECT_TRUE(fleet.admit(synthetic_spec("retry", 498)).admitted);
}

// ---------------------------------------------------- cross-shard merge --

TEST(ShardedFleet, CrossShardMergeSavingsZeroAtOneShardPositiveAtTwo) {
  // Identical synthetic tenants on each shard leave identical residual
  // (non-full) batches per device class every tick; the second merge level
  // must account a strictly positive saving for topping those up across
  // shards — and exactly zero when there is only one shard (the identity
  // the shard-of-one guard depends on).
  const auto savings = [](int shards) {
    FleetConfig cfg;
    cfg.shards = shards;
    ShardedFleet fleet(cfg);
    for (int i = 0; i < 2 * shards; ++i)
      EXPECT_TRUE(
          fleet.admit(synthetic_spec("s" + std::to_string(i), 500 + i))
              .admitted);
    fleet.run(12);
    const FleetSnapshot snap = fleet.snapshot();
    EXPECT_GE(snap.cross_busy_saved_ms, 0.0);
    return snap;
  };
  const FleetSnapshot one = savings(1);
  EXPECT_EQ(one.cross_batches_saved, 0);
  EXPECT_DOUBLE_EQ(one.cross_busy_saved_ms, 0.0);
  const FleetSnapshot two = savings(2);
  EXPECT_GT(two.cross_batches_saved, 0);
  EXPECT_GT(two.cross_busy_saved_ms, 0.0);
}

// ------------------------------------------------------- handle hygiene --

TEST(ShardedFleet, TypedHandleErrorsAcrossTheDirectory) {
  FleetConfig cfg;
  cfg.shards = 2;
  ShardedFleet fleet(cfg);
  // A pipeline-backed session: result() retention across eviction is part
  // of the surface under test (synthetic sessions keep no frame results).
  const SessionHandle h = fleet.admit(pipeline_spec("a", 600)).handle;
  ASSERT_TRUE(h.valid());
  fleet.run(3);

  // Wrong-state and out-of-range migrations are typed, not fatal.
  EXPECT_EQ(fleet.migrate(h, 99), FleetStatus::kUnknownSession);
  EXPECT_EQ(fleet.release(h), FleetStatus::kInvalidState);  // still active

  ASSERT_EQ(fleet.evict(h), FleetStatus::kOk);
  EXPECT_EQ(fleet.migrate(h, 1), FleetStatus::kInvalidState);  // evicted
  FleetStatus status = FleetStatus::kOk;
  EXPECT_EQ(fleet.result(h, &status).frames.size(), 3u);
  EXPECT_EQ(status, FleetStatus::kOk);

  ASSERT_EQ(fleet.release(h), FleetStatus::kOk);
  EXPECT_TRUE(fleet.result(h, &status).frames.empty());
  EXPECT_EQ(status, FleetStatus::kStaleHandle);
  EXPECT_EQ(fleet.pause(h), FleetStatus::kStaleHandle);
  EXPECT_EQ(fleet.migrate(h, 1), FleetStatus::kStaleHandle);
  EXPECT_EQ(fleet.state(h), SessionState::kEvicted);

  // The recycled slot's new tenant is invisible through the old handle.
  const SessionHandle next = fleet.admit(synthetic_spec("b", 601)).handle;
  EXPECT_EQ(next.id, h.id);
  EXPECT_EQ(next.gen, h.gen + 1);
  EXPECT_EQ(fleet.pause(h), FleetStatus::kStaleHandle);
  EXPECT_EQ(fleet.state(next), SessionState::kActive);

  const SessionHandle unknown{424242, 7};
  EXPECT_EQ(fleet.evict(unknown), FleetStatus::kUnknownSession);
  EXPECT_EQ(fleet.result(unknown, &status).frames.size(), 0u);
  EXPECT_EQ(status, FleetStatus::kUnknownSession);
}

// --------------------------------------------------- trace attribution --

TEST(ShardedFleet, MigratedSessionTraceEventsCarryShardAndSource) {
  // Post-migration lifecycle events must identify both where the session
  // lives now (shard) and where it came from (migrated_from), so a trace
  // reader can follow a session across the plane without a side table.
  FleetConfig cfg;
  cfg.shards = 2;
  ShardedFleet fleet(cfg);
  runtime::TraceRecorder trace;
  fleet.attach_trace(&trace);

  const AdmitResult r = fleet.admit(synthetic_spec("s0", 700));
  ASSERT_TRUE(r.admitted);
  const int source = r.shard;
  const int target = 1 - source;
  fleet.run(5);

  ASSERT_EQ(fleet.migrate(r.handle, target), FleetStatus::kOk);
  fleet.run(3);
  EXPECT_EQ(fleet.pause(r.handle), FleetStatus::kOk);
  EXPECT_EQ(fleet.resume(r.handle), FleetStatus::kOk);

  bool saw_admit = false, saw_pause = false, saw_resume = false;
  for (const runtime::TraceEvent& e : trace.events()) {
    switch (e.type) {
      case runtime::TraceEventType::kSessionAdmit:
        // Pre-migration: native shard, no source.
        EXPECT_EQ(e.shard, source);
        EXPECT_EQ(e.migrated_from, -1);
        saw_admit = true;
        break;
      case runtime::TraceEventType::kSessionMigrate:
        EXPECT_EQ(static_cast<int>(e.value), target);
        break;
      case runtime::TraceEventType::kSessionPause:
        EXPECT_EQ(e.shard, target);
        EXPECT_EQ(e.migrated_from, source);
        saw_pause = true;
        break;
      case runtime::TraceEventType::kSessionResume:
        EXPECT_EQ(e.shard, target);
        EXPECT_EQ(e.migrated_from, source);
        saw_resume = true;
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_pause);
  EXPECT_TRUE(saw_resume);
}

// ----------------------------------------------------- obs determinism --

TEST(ShardedFleet, ObsDeterministicAcrossThreadCounts) {
  // Extends test_runtime's ObsDeterministicAcrossThreadCounts to the
  // sharded plane: every obs input is a simulated quantity, so the metrics
  // fingerprint, span counts and the critical-path attribution fingerprint
  // must be bit-identical whether the worker pool is 1 or 8 wide — at one
  // shard and at four. (Fingerprints across DIFFERENT shard counts differ
  // legitimately: metric names carry the shard index.)
  struct Observed {
    std::string metrics;
    std::string attribution;
    std::map<std::string, long long> spans;
  };
  const auto run_observed = [](int shards, int threads) {
    obs::reset();
    obs::set_enabled(true);
    obs::set_attribution_enabled(true);
    FleetConfig cfg;
    cfg.shards = shards;
    cfg.threads = threads;
    ShardedFleet fleet(cfg);
    for (int i = 0; i < 8; ++i)
      EXPECT_TRUE(
          fleet.admit(synthetic_spec("s" + std::to_string(i), 800 + i))
              .admitted);
    fleet.run(12);
    Observed o;
    o.metrics = obs::metrics().fingerprint();
    o.attribution = obs::critical_path().fingerprint();
    o.spans = obs::tracer().span_counts();
    obs::set_attribution_enabled(false);
    obs::set_enabled(false);
    obs::reset();
    return o;
  };
  for (int shards : {1, 4}) {
    const Observed narrow = run_observed(shards, 1);
    const Observed wide = run_observed(shards, 8);
    EXPECT_FALSE(narrow.metrics.empty());
    EXPECT_EQ(narrow.metrics, wide.metrics) << "shards=" << shards;
    EXPECT_EQ(narrow.attribution, wide.attribution) << "shards=" << shards;
    EXPECT_EQ(narrow.spans, wide.spans) << "shards=" << shards;
  }
}

// --------------------------------------------------- merged exposition --

TEST(ShardedFleet, MergedExpositionMatchesFlatFleetAtOneShard) {
  // A one-shard plane registers its metrics under "fleet.shard.0.*"; the
  // registry's merged rollup synthesizes flat "fleet.*" entries from them.
  // Driven identically, those merged entries must be bit-equal (same
  // serialized JSON) to what a plain Fleet exports directly — counters,
  // gauges, and full histogram entries including percentiles, which the
  // merge recomputes with the same percentile_from_counts algorithm.
  const auto run_doc = [](bool sharded_plane) {
    obs::reset();
    obs::set_enabled(true);
    FleetConfig cfg;
    std::unique_ptr<FleetApi> fleet;
    if (sharded_plane)
      fleet = std::make_unique<ShardedFleet>(cfg);
    else
      fleet = std::make_unique<Fleet>(cfg);
    EXPECT_TRUE(fleet->admit(pipeline_spec("a", 21)).admitted);
    EXPECT_TRUE(fleet->admit(pipeline_spec("b", 22, /*fps=*/15)).admitted);
    fleet->run(12);
    std::string doc = obs::metrics().to_json();
    obs::set_enabled(false);
    obs::reset();
    return doc;
  };
  std::string err;
  const std::optional<util::Json> flat = util::Json::parse(run_doc(false), &err);
  const std::optional<util::Json> merged =
      util::Json::parse(run_doc(true), &err);
  ASSERT_TRUE(flat.has_value() && merged.has_value()) << err;

  const auto is_flat_fleet_name = [](const std::string& name) {
    return name.rfind("fleet.", 0) == 0 && name.rfind("fleet.shard.", 0) != 0;
  };
  int compared = 0;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const util::Json* a = flat->find(section);
    const util::Json* b = merged->find(section);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    for (const auto& [name, entry] : a->as_object()) {
      if (!is_flat_fleet_name(name)) continue;
      const util::Json* m = b->find(name);
      ASSERT_NE(m, nullptr) << section << "/" << name << " missing from the "
                            << "merged exposition";
      EXPECT_EQ(entry.dump(), m->dump()) << section << "/" << name;
      // The per-shard source entry is exposed alongside, shard-labeled —
      // except the "fleet.events.*" counters, which both planes register
      // flat on purpose (plane-level lifecycle tallies, not shard metrics).
      if (name.rfind("fleet.events.", 0) != 0) {
        const std::string shard_name =
            "fleet.shard.0." + name.substr(std::string("fleet.").size());
        ASSERT_NE(b->find(shard_name), nullptr) << shard_name;
      }
      ++compared;
    }
  }
  EXPECT_GT(compared, 5) << "expected a real spread of fleet metrics";
  // The merged histogram entries carry no shard label; per-shard ones do.
  const util::Json* hists = merged->find("histograms");
  const util::Json* rollup = hists->find("fleet.tick_busy_ms");
  ASSERT_NE(rollup, nullptr);
  EXPECT_EQ(rollup->find("shard"), nullptr);
  const util::Json* per_shard = hists->find("fleet.shard.0.tick_busy_ms");
  ASSERT_NE(per_shard, nullptr);
  EXPECT_EQ(per_shard->number_or("shard", -1.0), 0.0);
}

// ------------------------------------------------------ admission smoke --

TEST(ShardedFleet, ThousandSyntheticSessionsAdmitAndServe) {
  // The tier-1 scale smoke: 1k synthetic tenants across 8 shards admit
  // (O(1) each — no roster scans with admission control off), spread
  // evenly, and every one serves every tick.
  FleetConfig cfg;
  cfg.shards = 8;
  cfg.threads = 4;
  ShardedFleet fleet(cfg);
  for (int i = 0; i < 1000; ++i)
    ASSERT_TRUE(
        fleet.admit(synthetic_spec("s" + std::to_string(i), 1000 + i))
            .admitted);
  EXPECT_EQ(fleet.session_count(), 1000u);
  fleet.run(3);

  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_EQ(snap.admitted, 1000);
  EXPECT_EQ(snap.rejected, 0);
  ASSERT_EQ(snap.shard_rollups.size(), 8u);
  long frames = 0;
  for (const ShardRollup& r : snap.shard_rollups) {
    EXPECT_EQ(r.sessions, 125);  // least-loaded placement spreads evenly
    frames += r.frames;
  }
  EXPECT_EQ(frames, 3000);
  EXPECT_GT(snap.cross_batches_saved, 0);
}

}  // namespace
}  // namespace mvs::fleet

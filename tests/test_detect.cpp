#include <gtest/gtest.h>

#include "detect/simulated_detector.hpp"
#include "util/rng.hpp"

namespace mvs::detect {
namespace {

GroundTruthObject make_object(std::uint64_t id, geom::BBox box) {
  GroundTruthObject obj;
  obj.id = id;
  obj.box = box;
  return obj;
}

TEST(SimulatedDetector, DetectsLargeObjectsReliably) {
  SimulatedDetector detector;
  util::Rng rng(1);
  int hits = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto dets = detector.detect_full(
        {make_object(1, {100, 100, 80, 60})}, 1280, 704, rng);
    for (const Detection& d : dets)
      if (d.truth_id == 1) ++hits;
  }
  EXPECT_GE(hits, 190);
}

TEST(SimulatedDetector, MissesTinyObjectsOften) {
  SimulatedDetector detector;
  util::Rng rng(2);
  int hits = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto dets = detector.detect_full(
        {make_object(1, {100, 100, 5, 5})}, 1280, 704, rng);
    for (const Detection& d : dets)
      if (d.truth_id == 1) ++hits;
  }
  EXPECT_LE(hits, 120);  // clearly degraded vs large objects
}

TEST(SimulatedDetector, BoxNoiseBounded) {
  SimulatedDetector detector;
  util::Rng rng(3);
  const geom::BBox truth{200, 200, 60, 40};
  for (int trial = 0; trial < 100; ++trial) {
    const auto dets =
        detector.detect_full({make_object(1, truth)}, 1280, 704, rng);
    for (const Detection& d : dets) {
      if (d.truth_id != 1) continue;
      EXPECT_GT(geom::iou(d.box, truth), 0.6);
    }
  }
}

TEST(SimulatedDetector, RoiGatesByCoverage) {
  SimulatedDetector detector;
  util::Rng rng(4);
  const auto obj = make_object(1, {100, 100, 40, 40});
  // ROI far away: never detected.
  for (int trial = 0; trial < 50; ++trial) {
    const auto dets =
        detector.detect_roi({obj}, {500, 500, 128, 128}, 128, rng);
    for (const Detection& d : dets) EXPECT_NE(d.truth_id, 1u);
  }
  // ROI covering the object: detected almost always.
  int hits = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto dets = detector.detect_roi({obj}, {80, 80, 128, 128}, 128, rng);
    for (const Detection& d : dets)
      if (d.truth_id == 1) ++hits;
  }
  EXPECT_GE(hits, 180);
}

TEST(SimulatedDetector, DownsamplingHurtsRecall) {
  SimulatedDetector detector;
  util::Rng rng(5);
  const auto obj = make_object(1, {120, 120, 24, 24});
  const geom::BBox roi{64, 64, 512, 512};
  int native = 0, downsampled = 0;
  for (int trial = 0; trial < 300; ++trial) {
    for (const Detection& d : detector.detect_roi({obj}, roi, 512, rng))
      if (d.truth_id == 1) ++native;
    for (const Detection& d : detector.detect_roi({obj}, roi, 64, rng))
      if (d.truth_id == 1) ++downsampled;
  }
  EXPECT_GT(native, downsampled + 30);
}

TEST(SimulatedDetector, DeterministicGivenSeed) {
  SimulatedDetector detector;
  const auto objs = std::vector<GroundTruthObject>{
      make_object(1, {10, 10, 50, 50}), make_object(2, {300, 200, 40, 30})};
  util::Rng a(42), b(42);
  const auto da = detector.detect_full(objs, 1280, 704, a);
  const auto db = detector.detect_full(objs, 1280, 704, b);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_DOUBLE_EQ(da[i].box.x, db[i].box.x);
    EXPECT_DOUBLE_EQ(da[i].score, db[i].score);
  }
}

TEST(SimulatedDetector, FalsePositivesAreMarked) {
  SimulatedDetector::Config cfg;
  cfg.false_positive_rate = 1.0;  // force an FP per region
  SimulatedDetector detector(cfg);
  util::Rng rng(6);
  const auto dets = detector.detect_full({}, 1280, 704, rng);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].truth_id, Detection::kFalsePositive);
  EXPECT_LE(dets[0].box.x2(), 1280.0);
}

TEST(SimulatedDetector, TruncatedObjectsMissedMore) {
  SimulatedDetector detector;
  util::Rng rng(7);
  const auto obj = make_object(1, {100, 100, 40, 40});
  int full_cov = 0, truncated = 0;
  for (int trial = 0; trial < 300; ++trial) {
    // ROI fully covers the object.
    for (const Detection& d :
         detector.detect_roi({obj}, {80, 80, 128, 128}, 128, rng))
      if (d.truth_id == 1) ++full_cov;
    // ROI covers ~55% of the object (just above the gate).
    for (const Detection& d :
         detector.detect_roi({obj}, {118, 100, 128, 128}, 128, rng))
      if (d.truth_id == 1) ++truncated;
  }
  EXPECT_GT(full_cov, truncated);
}

}  // namespace
}  // namespace mvs::detect

// mvs::netsim: discrete-event transport — queueing order, loss/retry
// accounting, dropout/rejoin through the pipeline, and determinism.

#include <gtest/gtest.h>

#include <vector>

#include "net/transport.hpp"
#include "netsim/event_queue.hpp"
#include "netsim/fault.hpp"
#include "netsim/sim_transport.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/trace.hpp"

namespace mvs {
namespace {

// ---------------------------------------------------------------------------
// EventQueue

TEST(EventQueue, DispatchesInTimeOrderWithFifoTieBreak) {
  netsim::EventQueue q;
  std::vector<int> order;
  q.schedule(5.0, [&](double) { order.push_back(3); });
  q.schedule(1.0, [&](double) { order.push_back(0); });
  q.schedule(2.0, [&](double) { order.push_back(1); });
  q.schedule(2.0, [&](double) { order.push_back(2); });  // same time: FIFO
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now_ms(), 5.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandlersCanScheduleAndPastTimesClampToNow) {
  netsim::EventQueue q;
  double fired_at = -1.0;
  q.schedule(10.0, [&](double now) {
    // Scheduling into the past must clamp to "now", not rewind the clock.
    q.schedule(now - 5.0, [&](double t) { fired_at = t; });
  });
  q.run_until_empty();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
  EXPECT_DOUBLE_EQ(q.now_ms(), 10.0);
}

TEST(EventQueue, ResetDropsPendingEventsAndClock) {
  netsim::EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&](double) { ++fired; });
  q.schedule(2.0, [&](double) { ++fired; });
  ASSERT_TRUE(q.run_one());
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now_ms(), 0.0);
  q.run_until_empty();
  EXPECT_EQ(fired, 1);
}

// ---------------------------------------------------------------------------
// SimTransport — single-cycle protocol semantics

netsim::SimTransport::Config fault_free_config() {
  netsim::SimTransport::Config cfg;
  cfg.link.uplink_mbps = 20.0;
  cfg.link.downlink_mbps = 100.0;
  cfg.link.base_latency_ms = 1.0;
  return cfg;
}

double serialize_ms(std::size_t bytes, double mbps) {
  return static_cast<double>(bytes) * 8.0 / (mbps * 1e6) * 1e3;
}

TEST(SimTransport, FaultFreeUplinksQueueInFifoOrder) {
  const auto cfg = fault_free_config();
  netsim::SimTransport t(cfg, 3, /*seed=*/1);
  // 2500 B at 20 Mbps = exactly 1 ms of serialization each; all three
  // arrive simultaneously (same base latency), so they serialize in send
  // order: waits are 0, 1 and 2 ms.
  t.send_uplink(0, 0, 2500);
  t.send_uplink(0, 1, 2500);
  t.send_uplink(0, 2, 2500);
  const net::UplinkReport up = t.run_uplinks(0);
  ASSERT_EQ(up.delivered.size(), 3u);
  EXPECT_TRUE(up.delivered[0] && up.delivered[1] && up.delivered[2]);
  // Last message finishes at base + 3 serializations.
  EXPECT_NEAR(up.elapsed_ms, 1.0 + 3.0, 1e-9);

  const net::CycleReport report = t.finish_cycle(0);
  EXPECT_NEAR(report.queue_ms, 0.0 + 1.0 + 2.0, 1e-9);
  EXPECT_EQ(report.retries, 0);
  EXPECT_EQ(report.dropped_msgs, 0);
  EXPECT_TRUE(report.events.empty());
}

TEST(SimTransport, FaultFreeCycleMatchesIdealLinkModel) {
  const auto cfg = fault_free_config();
  netsim::SimTransport t(cfg, 4, /*seed=*/9);
  const std::vector<std::size_t> up_bytes = {900, 1400, 2100, 600};
  std::size_t up_sum = 0, down_sum = 0;
  for (int cam = 0; cam < 4; ++cam) {
    t.send_uplink(0, cam, up_bytes[static_cast<std::size_t>(cam)]);
    up_sum += up_bytes[static_cast<std::size_t>(cam)];
  }
  (void)t.run_uplinks(0);
  for (int cam = 0; cam < 4; ++cam) {
    t.send_downlink(0, cam, 500);
    down_sum += 500;
  }
  const net::CycleReport report = t.finish_cycle(0);
  // Simultaneous arrivals serialize back-to-back, so the cycle's end-to-end
  // time collapses to the closed-form expression (modulo float summation
  // order): base + sum(serialize) per direction.
  const net::LinkModel link(cfg.link);
  EXPECT_NEAR(report.comm_ms, link.upload_ms(up_sum) + link.download_ms(down_sum),
              1e-9);
  ASSERT_EQ(report.downlink_delivered.size(), 4u);
  for (int cam = 0; cam < 4; ++cam)
    EXPECT_TRUE(report.downlink_delivered[static_cast<std::size_t>(cam)]);
}

TEST(SimTransport, TotalLossExhaustsRetryBudgetAndDrops) {
  auto cfg = fault_free_config();
  cfg.faults.loss_rate = 1.0 - 1e-12;  // effectively certain loss
  cfg.faults.retry_timeout_ms = 4.0;
  cfg.faults.max_retries = 3;
  netsim::SimTransport t(cfg, 2, /*seed=*/3);
  t.send_uplink(0, 0, 1000);
  t.send_uplink(0, 1, 1000);
  const net::UplinkReport up = t.run_uplinks(0);
  EXPECT_FALSE(up.delivered[0]);
  EXPECT_FALSE(up.delivered[1]);
  // Every attempt lost: the sender gives up after the final attempt's
  // timeout, (max_retries + 1) * retry_timeout after the first send.
  EXPECT_NEAR(up.elapsed_ms, 4.0 * 4.0, 1e-9);

  const net::CycleReport report = t.finish_cycle(0);
  EXPECT_EQ(report.retries, 2 * 3);
  EXPECT_EQ(report.dropped_msgs, 2);
  int retry_events = 0, drop_events = 0;
  for (const net::MessageEvent& e : report.events) {
    retry_events += (e.kind == net::MessageEvent::Kind::kRetry);
    drop_events += (e.kind == net::MessageEvent::Kind::kDrop);
    EXPECT_TRUE(e.uplink);
  }
  EXPECT_EQ(retry_events, 6);
  EXPECT_EQ(drop_events, 2);
}

TEST(SimTransport, CycleStateResetsBetweenKeyFrames) {
  auto cfg = fault_free_config();
  cfg.faults.loss_rate = 1.0 - 1e-12;
  cfg.faults.max_retries = 0;
  netsim::SimTransport t(cfg, 1, /*seed=*/5);
  t.send_uplink(0, 0, 1000);
  net::CycleReport first = t.finish_cycle(0);
  EXPECT_EQ(first.dropped_msgs, 1);
  // A fresh cycle must not inherit the previous cycle's pending messages.
  net::CycleReport second = t.finish_cycle(1);
  EXPECT_EQ(second.dropped_msgs, 0);
  EXPECT_DOUBLE_EQ(second.comm_ms, 0.0);
}

TEST(SimTransport, DropoutWindowsControlCameraOnline) {
  auto cfg = fault_free_config();
  cfg.faults.dropouts.push_back({/*camera=*/1, /*from=*/10, /*to=*/20});
  cfg.faults.dropouts.push_back({/*camera=*/2, /*from=*/5, /*to=*/-1});
  netsim::SimTransport t(cfg, 3, /*seed=*/1);
  EXPECT_TRUE(t.camera_online(0, 15));
  EXPECT_TRUE(t.camera_online(1, 9));
  EXPECT_FALSE(t.camera_online(1, 10));
  EXPECT_FALSE(t.camera_online(1, 19));
  EXPECT_TRUE(t.camera_online(1, 20));  // window end is exclusive
  EXPECT_FALSE(t.camera_online(2, 500));  // to = -1: never rejoins
}

TEST(SimTransport, SameSeedSameConfigIsBitIdentical) {
  auto cfg = fault_free_config();
  cfg.faults.loss_rate = 0.3;
  cfg.faults.jitter_ms = 2.0;
  cfg.faults.retry_timeout_ms = 5.0;
  auto run_cycle = [&cfg]() {
    netsim::SimTransport t(cfg, 4, /*seed=*/77);
    for (int cam = 0; cam < 4; ++cam) t.send_uplink(0, cam, 1500);
    (void)t.run_uplinks(0);
    for (int cam = 0; cam < 4; ++cam) t.send_downlink(0, cam, 700);
    return t.finish_cycle(0);
  };
  const net::CycleReport a = run_cycle();
  const net::CycleReport b = run_cycle();
  EXPECT_EQ(a.comm_ms, b.comm_ms);
  EXPECT_EQ(a.queue_ms, b.queue_ms);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.dropped_msgs, b.dropped_msgs);
  EXPECT_EQ(a.downlink_delivered, b.downlink_delivered);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].camera, b.events[i].camera);
    EXPECT_EQ(a.events[i].time_ms, b.events[i].time_ms);
  }
}

// ---------------------------------------------------------------------------
// IdealTransport — bit-exact closed-form equivalence

TEST(IdealTransport, ReproducesLinkModelArithmeticExactly) {
  net::LinkModel link;
  net::IdealTransport t(3, link);
  t.send_uplink(0, 0, 1234);
  t.send_uplink(0, 2, 4321);
  const net::UplinkReport up = t.run_uplinks(0);
  EXPECT_TRUE(up.delivered[0]);
  EXPECT_FALSE(up.delivered[1]);  // camera 1 never sent
  EXPECT_TRUE(up.delivered[2]);
  t.send_downlink(0, 0, 800);
  t.send_downlink(0, 1, 800);
  const net::CycleReport report = t.finish_cycle(0);
  // Bit-exact: the same expression the pre-netsim pipeline evaluated.
  EXPECT_EQ(report.comm_ms, link.upload_ms(1234 + 4321) + link.download_ms(1600));
  EXPECT_EQ(report.queue_ms, 0.0);
  EXPECT_EQ(report.retries, 0);
  EXPECT_EQ(report.dropped_msgs, 0);
  EXPECT_TRUE(report.downlink_delivered[1]);
  EXPECT_FALSE(report.downlink_delivered[2]);
}

TEST(IdealTransport, EveryCameraIsAlwaysOnline) {
  net::IdealTransport t(2);
  EXPECT_TRUE(t.camera_online(0, 0));
  EXPECT_TRUE(t.camera_online(1, 100000));
}

TEST(TransportKind, ParsesNamesCaseInsensitively) {
  EXPECT_EQ(net::parse_transport("ideal"), net::TransportKind::kIdeal);
  EXPECT_EQ(net::parse_transport("Lossy"), net::TransportKind::kLossy);
  EXPECT_EQ(net::parse_transport("NETSIM"), net::TransportKind::kLossy);
  EXPECT_FALSE(net::parse_transport("carrier-pigeon").has_value());
}

// ---------------------------------------------------------------------------
// Pipeline integration — dropout/rejoin and run-level determinism

runtime::PipelineConfig lossy_pipeline_config() {
  runtime::PipelineConfig cfg;
  cfg.policy = runtime::Policy::kBalb;
  cfg.horizon_frames = 10;
  cfg.training_frames = 60;
  cfg.seed = 7;
  cfg.transport = net::TransportKind::kLossy;
  return cfg;
}

TEST(PipelineNetsim, CameraDropoutAndRejoinCompleteGracefully) {
  auto cfg = lossy_pipeline_config();
  cfg.faults.dropouts.push_back({/*camera=*/1, /*from=*/10, /*to=*/25});
  runtime::Pipeline pipeline("S1", cfg);  // S1 deploys five cameras
  runtime::TraceRecorder trace;
  pipeline.attach_trace(&trace);
  const auto result = pipeline.run(50);
  ASSERT_EQ(result.frames.size(), 50u);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kCameraDown), 1u);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kCameraRejoin), 1u);
  // The run must stay sane: recall degrades but the pipeline keeps tracking
  // with the survivors and folds the camera back in at the next key frame.
  EXPECT_GT(result.object_recall, 0.3);
  for (std::size_t i = 0; i < result.frames.size(); ++i) {
    if (i >= 10 && i < 25) {
      EXPECT_EQ(result.frames[i].cameras_online, 4) << "frame index " << i;
    } else if (i < 10 || i >= 30) {
      // Rejoin waits for the first key frame at/after the window end
      // (horizon 10 -> frame 30), so 25..29 are allowed either way.
      EXPECT_EQ(result.frames[i].cameras_online, 5) << "frame index " << i;
    }
  }
}

TEST(PipelineNetsim, PermanentDropoutNeverRejoins) {
  auto cfg = lossy_pipeline_config();
  cfg.faults.dropouts.push_back({/*camera=*/0, /*from=*/5, /*to=*/-1});
  runtime::Pipeline pipeline("S1", cfg);
  runtime::TraceRecorder trace;
  pipeline.attach_trace(&trace);
  const auto result = pipeline.run(30);
  ASSERT_EQ(result.frames.size(), 30u);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kCameraDown), 1u);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kCameraRejoin), 0u);
  EXPECT_EQ(result.frames.back().cameras_online, 4);
}

TEST(PipelineNetsim, LossyRunRecordsNetworkEventsInTrace) {
  auto cfg = lossy_pipeline_config();
  cfg.faults.loss_rate = 0.5;
  cfg.faults.retry_timeout_ms = 4.0;
  runtime::Pipeline pipeline("S2", cfg);
  runtime::TraceRecorder trace;
  pipeline.attach_trace(&trace);
  const auto result = pipeline.run(40);
  const long retries = result.total_retries();
  EXPECT_GT(retries, 0);
  EXPECT_EQ(trace.count(runtime::TraceEventType::kNetRetry),
            static_cast<std::size_t>(retries));
  EXPECT_EQ(trace.count(runtime::TraceEventType::kNetDrop),
            static_cast<std::size_t>(result.total_dropped_msgs()));
}

TEST(PipelineNetsim, SameSeedLossyRunsAreIdentical) {
  auto cfg = lossy_pipeline_config();
  cfg.faults.loss_rate = 0.2;
  cfg.faults.jitter_ms = 1.5;
  auto run = [&cfg]() {
    runtime::Pipeline pipeline("S2", cfg);
    return pipeline.run(30);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.frames.size(), b.frames.size());
  EXPECT_EQ(a.object_recall, b.object_recall);
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    const runtime::FrameStats& fa = a.frames[i];
    const runtime::FrameStats& fb = b.frames[i];
    EXPECT_EQ(fa.frame, fb.frame);
    EXPECT_EQ(fa.key_frame, fb.key_frame);
    EXPECT_EQ(fa.slowest_infer_ms, fb.slowest_infer_ms);
    EXPECT_EQ(fa.frame_recall, fb.frame_recall);
    EXPECT_EQ(fa.gt_objects, fb.gt_objects);
    EXPECT_EQ(fa.tracked_objects, fb.tracked_objects);
    EXPECT_EQ(fa.comm_ms, fb.comm_ms);
    EXPECT_EQ(fa.queue_ms, fb.queue_ms);
    EXPECT_EQ(fa.retries, fb.retries);
    EXPECT_EQ(fa.dropped_msgs, fb.dropped_msgs);
    EXPECT_EQ(fa.cameras_online, fb.cameras_online);
    EXPECT_EQ(fa.camera_infer_ms, fb.camera_infer_ms);
  }
}

TEST(PipelineNetsim, ZeroFaultLossyMatchesIdealRecall) {
  auto ideal_cfg = lossy_pipeline_config();
  ideal_cfg.transport = net::TransportKind::kIdeal;
  auto lossy_cfg = lossy_pipeline_config();  // fault-free lossy
  runtime::Pipeline ideal("S2", ideal_cfg);
  runtime::Pipeline lossy("S2", lossy_cfg);
  const auto a = ideal.run(30);
  const auto b = lossy.run(30);
  // With no faults every message is delivered, so scheduling decisions —
  // and therefore recall and simulated inference — are identical; only the
  // comm accounting differs (queueing vs closed form).
  EXPECT_EQ(a.object_recall, b.object_recall);
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].slowest_infer_ms, b.frames[i].slowest_infer_ms);
    EXPECT_EQ(a.frames[i].frame_recall, b.frames[i].frame_recall);
  }
}

}  // namespace
}  // namespace mvs

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace mvs::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(3));
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, BernoulliClampsOutOfRange) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, PoissonMean) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 10000; ++i) s.add(rng.poisson(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.15);
}

TEST(Rng, PoissonZeroMeanYieldsZero) {
  Rng rng(17);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(23);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(31);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.uniform() == child.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.gaussian(1.0, 3.0);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(SampleSet, EmptyIsZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(sw.elapsed_ms(), 0.0);
}

TEST(Table, AlignsAndPads) {
  Table t({"a", "bb"});
  t.add_row({"1"});  // short row is padded
  t.add_row({"22", "333"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace mvs::util

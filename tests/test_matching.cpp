#include <gtest/gtest.h>

#include "matching/bbox_matcher.hpp"
#include "matching/hungarian.hpp"
#include "util/rng.hpp"

namespace mvs::matching {
namespace {

TEST(Hungarian, TrivialSingle) {
  const auto res = solve_assignment({3.0}, 1, 1);
  EXPECT_EQ(res.row_to_col[0], 0);
  EXPECT_DOUBLE_EQ(res.total_cost, 3.0);
}

TEST(Hungarian, TwoByTwoAntiDiagonal) {
  // [[10, 1], [1, 10]] -> optimal picks the two 1s.
  const auto res = solve_assignment({10, 1, 1, 10}, 2, 2);
  EXPECT_EQ(res.row_to_col[0], 1);
  EXPECT_EQ(res.row_to_col[1], 0);
  EXPECT_DOUBLE_EQ(res.total_cost, 2.0);
}

TEST(Hungarian, ClassicThreeByThree) {
  // Known instance with optimum 5 (1+3+1? verify): rows pick (0,1),(1,0),(2,2).
  const std::vector<double> cost = {4, 1, 3, 2, 0, 5, 3, 2, 2};
  const auto res = solve_assignment(cost, 3, 3);
  EXPECT_DOUBLE_EQ(res.total_cost, 5.0);  // 1 + 2 + 2
}

TEST(Hungarian, RectangularMoreRows) {
  // 3 rows, 2 cols: one row stays unmatched.
  const std::vector<double> cost = {1, 9, 9, 1, 5, 5};
  const auto res = solve_assignment(cost, 3, 2);
  int matched = 0;
  for (int c : res.row_to_col) matched += (c >= 0);
  EXPECT_EQ(matched, 2);
  EXPECT_DOUBLE_EQ(res.total_cost, 2.0);
}

TEST(Hungarian, RectangularMoreCols) {
  const std::vector<double> cost = {5, 1, 7};
  const auto res = solve_assignment(cost, 1, 3);
  EXPECT_EQ(res.row_to_col[0], 1);
  EXPECT_EQ(res.col_to_row[1], 0);
  EXPECT_EQ(res.col_to_row[0], -1);
}

TEST(Hungarian, ForbiddenPairsUnmatched) {
  const std::vector<double> cost = {kForbiddenCost, kForbiddenCost,
                                    kForbiddenCost, 1.0};
  const auto res = solve_assignment(cost, 2, 2);
  EXPECT_EQ(res.row_to_col[0], -1);
  EXPECT_EQ(res.row_to_col[1], 1);
  EXPECT_DOUBLE_EQ(res.total_cost, 1.0);
}

TEST(Hungarian, AllForbidden) {
  const std::vector<double> cost(4, kForbiddenCost);
  const auto res = solve_assignment(cost, 2, 2);
  EXPECT_EQ(res.row_to_col[0], -1);
  EXPECT_EQ(res.row_to_col[1], -1);
  EXPECT_DOUBLE_EQ(res.total_cost, 0.0);
}

TEST(Hungarian, EmptyInputs) {
  const auto res = solve_assignment({}, 0, 5);
  EXPECT_TRUE(res.row_to_col.empty());
  EXPECT_EQ(res.col_to_row.size(), 5u);
}

TEST(Hungarian, RowToColAndColToRowConsistent) {
  util::Rng rng(5);
  std::vector<double> cost(36);
  for (double& v : cost) v = rng.uniform(0, 10);
  const auto res = solve_assignment(cost, 6, 6);
  for (std::size_t r = 0; r < 6; ++r) {
    ASSERT_GE(res.row_to_col[r], 0);
    EXPECT_EQ(res.col_to_row[static_cast<std::size_t>(res.row_to_col[r])],
              static_cast<int>(r));
  }
}

/// Hungarian never costs more than greedy, and both produce valid matchings.
class HungarianVsGreedy : public ::testing::TestWithParam<int> {};

TEST_P(HungarianVsGreedy, OptimalityAndValidity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  const std::size_t rows = 2 + rng.index(6);
  const std::size_t cols = 2 + rng.index(6);
  std::vector<double> cost(rows * cols);
  for (double& v : cost) v = rng.uniform(0, 100);

  const auto hung = solve_assignment(cost, rows, cols);
  const auto greedy = solve_assignment_greedy(cost, rows, cols);
  EXPECT_LE(hung.total_cost, greedy.total_cost + 1e-9);

  // Full square part matched: min(rows, cols) matches.
  std::size_t matched = 0;
  for (int c : hung.row_to_col) matched += (c >= 0);
  EXPECT_EQ(matched, std::min(rows, cols));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianVsGreedy, ::testing::Range(0, 20));

TEST(BoxMatcher, MatchesByIou) {
  const std::vector<geom::BBox> a = {{0, 0, 10, 10}, {100, 100, 10, 10}};
  const std::vector<geom::BBox> b = {{101, 101, 10, 10}, {1, 1, 10, 10}};
  const auto res = match_boxes(a, b, 0.1);
  ASSERT_EQ(res.matches.size(), 2u);
  // a0 matches b1, a1 matches b0.
  for (const BoxMatch& match : res.matches) {
    if (match.a == 0) EXPECT_EQ(match.b, 1);
    if (match.a == 1) EXPECT_EQ(match.b, 0);
    EXPECT_GT(match.iou, 0.5);
  }
}

TEST(BoxMatcher, ThresholdExcludesWeakOverlap) {
  const std::vector<geom::BBox> a = {{0, 0, 10, 10}};
  const std::vector<geom::BBox> b = {{9, 9, 10, 10}};  // IoU ~ 0.005
  const auto res = match_boxes(a, b, 0.3);
  EXPECT_TRUE(res.matches.empty());
  EXPECT_EQ(res.unmatched_a.size(), 1u);
  EXPECT_EQ(res.unmatched_b.size(), 1u);
}

TEST(BoxMatcher, PrefersHigherIouGlobally) {
  // One detection between two tracks: must go to the closer one.
  const std::vector<geom::BBox> tracks = {{0, 0, 10, 10}, {4, 0, 10, 10}};
  const std::vector<geom::BBox> dets = {{3.5, 0, 10, 10}};
  const auto res = match_boxes(tracks, dets, 0.1);
  ASSERT_EQ(res.matches.size(), 1u);
  EXPECT_EQ(res.matches[0].a, 1);
}

TEST(BoxMatcher, EmptyInputs) {
  const auto res = match_boxes({}, {{0, 0, 1, 1}}, 0.1);
  EXPECT_TRUE(res.matches.empty());
  EXPECT_EQ(res.unmatched_b.size(), 1u);
}

}  // namespace
}  // namespace mvs::matching

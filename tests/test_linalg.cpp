#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "util/rng.hpp"

namespace mvs::linalg {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
}

TEST(Matrix, Transpose) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Multiply) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyByIdentity) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix c = a * Matrix::identity(2);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 4.0);
}

TEST(Matrix, AddSubScale) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix sum = a + a;
  EXPECT_DOUBLE_EQ(sum(1, 1), 8.0);
  const Matrix zero = a - a;
  EXPECT_DOUBLE_EQ(zero.norm(), 0.0);
  EXPECT_DOUBLE_EQ(a.scaled(2.0)(0, 1), 4.0);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix m{{3, 4}};
  EXPECT_DOUBLE_EQ(m.norm(), 5.0);
}

TEST(Solve, TwoByTwo) {
  const Matrix a{{2, 1}, {1, 3}};
  const auto x = solve(a, {5, 10});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Solve, SingularReturnsNullopt) {
  const Matrix a{{1, 2}, {2, 4}};
  EXPECT_FALSE(solve(a, {1, 2}).has_value());
}

TEST(Solve, RequiresPivoting) {
  // Leading zero forces a row swap.
  const Matrix a{{0, 1}, {1, 0}};
  const auto x = solve(a, {2, 3});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

class SolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolveProperty, RandomSystemsRoundTrip) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 1);
  const std::size_t n = 5;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-2, 2);
  for (std::size_t d = 0; d < n; ++d) a(d, d) += 4.0;  // diagonally dominant
  std::vector<double> truth(n);
  for (double& v : truth) v = rng.uniform(-5, 5);
  std::vector<double> b(n, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b[r] += a(r, c) * truth[c];
  const auto x = solve(a, b);
  ASSERT_TRUE(x.has_value());
  for (std::size_t d = 0; d < n; ++d) EXPECT_NEAR((*x)[d], truth[d], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolveProperty, ::testing::Range(0, 10));

TEST(LeastSquares, RecoversOverdeterminedLine) {
  // y = 2x + 1 sampled exactly: LS must recover it.
  Matrix a(4, 2);
  std::vector<double> b(4);
  for (int i = 0; i < 4; ++i) {
    a(static_cast<std::size_t>(i), 0) = i;
    a(static_cast<std::size_t>(i), 1) = 1.0;
    b[static_cast<std::size_t>(i)] = 2.0 * i + 1.0;
  }
  const auto x = least_squares(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, 1e-6);
  EXPECT_NEAR((*x)[1], 1.0, 1e-6);
}

TEST(SymmetricEigen, DiagonalMatrix) {
  const Matrix a{{3, 0}, {0, 1}};
  const EigenResult e = symmetric_eigen(a);
  EXPECT_NEAR(e.values[0], 1.0, 1e-10);
  EXPECT_NEAR(e.values[1], 3.0, 1e-10);
}

TEST(SymmetricEigen, KnownPair) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const Matrix a{{2, 1}, {1, 2}};
  const EigenResult e = symmetric_eigen(a);
  EXPECT_NEAR(e.values[0], 1.0, 1e-10);
  EXPECT_NEAR(e.values[1], 3.0, 1e-10);
  // Eigenvector of lambda=1 is (1,-1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(SymmetricEigen, VectorsSatisfyDefinition) {
  util::Rng rng(3);
  const std::size_t n = 4;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) {
      const double v = rng.uniform(-1, 1);
      a(r, c) = v;
      a(c, r) = v;
    }
  const EigenResult e = symmetric_eigen(a);
  for (std::size_t k = 0; k < n; ++k) {
    // ||A v - lambda v|| ~ 0
    for (std::size_t r = 0; r < n; ++r) {
      double av = 0.0;
      for (std::size_t c = 0; c < n; ++c) av += a(r, c) * e.vectors(c, k);
      EXPECT_NEAR(av, e.values[k] * e.vectors(r, k), 1e-8);
    }
  }
}

TEST(SmallestEigenvector, NullSpaceDirection) {
  // Rank-deficient Gram matrix: null space along (1,1)/sqrt(2).
  const Matrix a{{1, -1}, {-1, 1}};
  const auto v = smallest_eigenvector(a);
  EXPECT_NEAR(v[0] - v[1], 0.0, 1e-8);
  EXPECT_NEAR(std::abs(v[0]), 1.0 / std::sqrt(2.0), 1e-8);
}

}  // namespace
}  // namespace mvs::linalg

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "net/link.hpp"
#include "net/messages.hpp"
#include "net/serializer.hpp"
#include "util/rng.hpp"

namespace mvs::net {
namespace {

TEST(Serializer, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(200);
  w.u32(0xDEADBEEF);
  w.u64(0x123456789ABCDEF0ULL);
  w.i32(-42);
  w.f64(-3.25);
  w.str("hello");
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.u8(), 200);
  EXPECT_EQ(*r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.u64(), 0x123456789ABCDEF0ULL);
  EXPECT_EQ(*r.i32(), -42);
  EXPECT_DOUBLE_EQ(*r.f64(), -3.25);
  EXPECT_EQ(*r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serializer, BBoxRoundTrip) {
  ByteWriter w;
  w.bbox({1.5, -2.5, 30.25, 40.125});
  ByteReader r(w.bytes());
  const auto box = r.bbox();
  ASSERT_TRUE(box.has_value());
  EXPECT_DOUBLE_EQ(box->x, 1.5);
  EXPECT_DOUBLE_EQ(box->h, 40.125);
}

TEST(Serializer, TruncatedReadFails) {
  ByteWriter w;
  w.u32(7);
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_FALSE(r.u32().has_value());
}

TEST(Serializer, StringLengthGuard) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes, none present
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.str().has_value());
}

TEST(Serializer, SpecialFloats) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(0.0);
  ByteReader r(w.bytes());
  EXPECT_TRUE(std::isinf(*r.f64()));
  EXPECT_DOUBLE_EQ(*r.f64(), 0.0);
}

detect::Detection sample_detection(util::Rng& rng) {
  detect::Detection d;
  d.box = {rng.uniform(0, 1000), rng.uniform(0, 600), rng.uniform(5, 100),
           rng.uniform(5, 100)};
  d.cls = static_cast<detect::ObjectClass>(rng.uniform_int(0, 3));
  d.score = rng.uniform(0, 1);
  d.truth_id = static_cast<std::uint64_t>(rng.uniform_int(0, 10000));
  return d;
}

class MessageRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(MessageRoundTrip, DetectionList) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  DetectionListMsg msg;
  msg.camera_id = static_cast<std::uint32_t>(GetParam());
  msg.frame_index = 12345;
  const int n = GetParam() * 3;
  for (int i = 0; i < n; ++i) msg.detections.push_back(sample_detection(rng));

  const auto decoded = DetectionListMsg::decode(msg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->camera_id, msg.camera_id);
  EXPECT_EQ(decoded->frame_index, msg.frame_index);
  ASSERT_EQ(decoded->detections.size(), msg.detections.size());
  for (std::size_t i = 0; i < msg.detections.size(); ++i) {
    EXPECT_DOUBLE_EQ(decoded->detections[i].box.x, msg.detections[i].box.x);
    EXPECT_EQ(decoded->detections[i].truth_id, msg.detections[i].truth_id);
    EXPECT_EQ(decoded->detections[i].cls, msg.detections[i].cls);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MessageRoundTrip, ::testing::Range(0, 6));

TEST(Messages, AssignmentRoundTrip) {
  AssignmentMsg msg;
  msg.camera_id = 3;
  msg.frame_index = 99;
  msg.assigned_keys = {1, 5, 9};
  msg.priority_order = {2, 0, 1};
  const auto decoded = AssignmentMsg::decode(msg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->assigned_keys, msg.assigned_keys);
  EXPECT_EQ(decoded->priority_order, msg.priority_order);
}

TEST(Messages, CorruptedDecodeFails) {
  DetectionListMsg msg;
  msg.detections.push_back({});
  auto bytes = msg.encode();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DetectionListMsg::decode(bytes).has_value());
}

TEST(Messages, TrailingGarbageRejected) {
  AssignmentMsg msg;
  auto bytes = msg.encode();
  bytes.push_back(0);
  EXPECT_FALSE(AssignmentMsg::decode(bytes).has_value());
}

// --- fuzz-style randomized round-trips -------------------------------------

std::uint64_t f64_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Coordinates drawn from a pool of pathological values (signed zero,
/// infinities, NaN, DBL_MAX, denormal) mixed with ordinary ones.
double extreme_value(util::Rng& rng) {
  static const double pool[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      std::numeric_limits<double>::denorm_min(),
      1e-308,
  };
  const int pick = rng.uniform_int(0, 11);
  if (pick < 9) return pool[pick];
  return rng.uniform(-1e9, 1e9);
}

TEST(SerializerFuzz, DetectionListRoundTripsExtremeValues) {
  util::Rng rng(0xF0220);
  for (int iter = 0; iter < 300; ++iter) {
    DetectionListMsg msg;
    msg.camera_id = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
    msg.frame_index = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30))
                      << 32;
    const int n = rng.uniform_int(0, 12);  // 0 = empty detection list
    for (int i = 0; i < n; ++i) {
      detect::Detection d;
      d.box = {extreme_value(rng), extreme_value(rng), extreme_value(rng),
               extreme_value(rng)};
      d.cls = static_cast<detect::ObjectClass>(rng.uniform_int(-2, 1000));
      d.score = extreme_value(rng);
      d.truth_id = iter % 3 == 0 ? ~0ULL : static_cast<std::uint64_t>(i);
      msg.detections.push_back(d);
    }
    const auto decoded = DetectionListMsg::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value()) << "iteration " << iter;
    EXPECT_EQ(decoded->camera_id, msg.camera_id);
    EXPECT_EQ(decoded->frame_index, msg.frame_index);
    ASSERT_EQ(decoded->detections.size(), msg.detections.size());
    for (std::size_t i = 0; i < msg.detections.size(); ++i) {
      const auto& in = msg.detections[i];
      const auto& out = decoded->detections[i];
      // Bitwise comparison: NaN payloads and signed zeros must survive.
      EXPECT_EQ(f64_bits(out.box.x), f64_bits(in.box.x));
      EXPECT_EQ(f64_bits(out.box.y), f64_bits(in.box.y));
      EXPECT_EQ(f64_bits(out.box.w), f64_bits(in.box.w));
      EXPECT_EQ(f64_bits(out.box.h), f64_bits(in.box.h));
      EXPECT_EQ(f64_bits(out.score), f64_bits(in.score));
      EXPECT_EQ(out.cls, in.cls);
      EXPECT_EQ(out.truth_id, in.truth_id);
    }
  }
}

TEST(SerializerFuzz, AssignmentRoundTripsExtremeValues) {
  util::Rng rng(0xF0221);
  for (int iter = 0; iter < 300; ++iter) {
    AssignmentMsg msg;
    msg.camera_id = iter % 2 ? ~0u : 0u;
    msg.frame_index = iter % 3 ? ~0ULL : 0ULL;
    const int nk = rng.uniform_int(0, 20);  // 0 = empty assignment
    for (int i = 0; i < nk; ++i)
      msg.assigned_keys.push_back(
          i % 2 ? ~0ULL : static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)));
    const int np = rng.uniform_int(0, 8);
    for (int i = 0; i < np; ++i)
      msg.priority_order.push_back(
          static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30)));
    const auto decoded = AssignmentMsg::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value()) << "iteration " << iter;
    EXPECT_EQ(decoded->camera_id, msg.camera_id);
    EXPECT_EQ(decoded->frame_index, msg.frame_index);
    EXPECT_EQ(decoded->assigned_keys, msg.assigned_keys);
    EXPECT_EQ(decoded->priority_order, msg.priority_order);
  }
}

TEST(SerializerFuzz, RandomBytesNeverCrashAndDecodeCanonically) {
  util::Rng rng(0xF0222);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(rng.uniform_int(0, 96)));
    for (auto& b : bytes)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    // Decoding must never crash; when garbage does parse, the format is
    // canonical — re-encoding reproduces the exact input bytes.
    if (const auto det = DetectionListMsg::decode(bytes)) {
      EXPECT_EQ(det->encode(), bytes) << "iteration " << iter;
    }
    if (const auto asg = AssignmentMsg::decode(bytes)) {
      EXPECT_EQ(asg->encode(), bytes) << "iteration " << iter;
    }
  }
}

TEST(LinkModel, TransferTimes) {
  const LinkModel link;  // 20 Mbps up, 100 Mbps down, 1 ms base
  // 1 MB upload: 8e6 bits / 20e6 bps = 0.4 s = 400 ms + 1 base.
  EXPECT_NEAR(link.upload_ms(1'000'000), 401.0, 1e-6);
  EXPECT_NEAR(link.download_ms(1'000'000), 81.0, 1e-6);
  EXPECT_GT(link.upload_ms(1000), link.download_ms(1000));
}

TEST(LinkModel, RoundTripComposes) {
  const LinkModel link;
  EXPECT_NEAR(link.round_trip_ms(1000, 5.0, 1000),
              link.upload_ms(1000) + 5.0 + link.download_ms(1000), 1e-12);
}

TEST(LinkModel, ZeroBytesIsBaseLatency) {
  const LinkModel link;
  EXPECT_DOUBLE_EQ(link.upload_ms(0), 1.0);
}

}  // namespace
}  // namespace mvs::net
